package difftest

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"
)

// loadSeeds parses testdata/seeds.txt: "<seed> <name> -- <description>".
func loadSeeds(t *testing.T) map[string]int64 {
	t.Helper()
	f, err := os.Open("testdata/seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := map[string]int64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("malformed seeds.txt line: %q", line)
		}
		seed, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			t.Fatalf("malformed seed in line %q: %v", line, err)
		}
		if _, dup := out[fields[1]]; dup {
			t.Fatalf("duplicate seed name %q", fields[1])
		}
		out[fields[1]] = seed
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("seeds.txt contains no seeds")
	}
	return out
}

// TestRegressionSeeds replays every pinned seed through the full
// configuration matrix and the budget-parity check. Each of these seeds
// exposed a real engine bug once; this test keeps them fixed.
func TestRegressionSeeds(t *testing.T) {
	for name, seed := range loadSeeds(t) {
		t.Run(name, func(t *testing.T) {
			c := Generate(seed)
			if d := Check(c, nil); d != nil {
				t.Errorf("seed %d regressed: %v", seed, d)
			}
			if d := CheckBudgeted(c); d != nil {
				t.Errorf("seed %d regressed (budget parity): %v", seed, d)
			}
		})
	}
}

// TestRandomSweep runs a fresh block of seeds through the full matrix on
// every go test run. Small enough to keep tier-1 fast; cmd/xqdiff and the
// CI smoke step run bigger sweeps.
func TestRandomSweep(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 30
	}
	for seed := int64(1); seed <= n; seed++ {
		c := Generate(seed)
		if d := Check(c, nil); d != nil {
			t.Fatalf("seed %d: %v", seed, d)
		}
	}
}

// TestBudgetSweep spot-checks limit-trip parity across the cache/trace
// dimensions for a block of seeds.
func TestBudgetSweep(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 15
	}
	for seed := int64(1); seed <= n; seed++ {
		c := Generate(seed)
		if d := CheckBudgeted(c); d != nil {
			t.Fatalf("seed %d: %v", seed, d)
		}
	}
}

// TestGeneratorDeterminism: the same seed must always produce the same
// case, or seeds.txt pins nothing.
func TestGeneratorDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a != b {
			t.Fatalf("seed %d not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestGeneratorParses: generated queries must be syntactically valid — a
// generator drifting into parse errors silently loses all its coverage.
func TestGeneratorParses(t *testing.T) {
	base := Matrix()[0]
	for seed := int64(1); seed <= 300; seed++ {
		c := Generate(seed)
		out := Eval(c, base)
		if out.Code == "XPST0003" {
			t.Errorf("seed %d generated an unparsable query: %s\nsrc: %s", seed, out.Err, c.Src)
		}
	}
}

// TestDivergenceOnSyntheticBug proves the oracle actually detects
// disagreement: two configs evaluated against hand-made outcomes that
// differ must produce a divergence with both sides reported.
func TestDivergenceOnSyntheticBug(t *testing.T) {
	c := Case{Seed: -1, Src: `1 + 1`}
	a := Eval(c, Config{Name: "O0"})
	if a.Out != "2" || a.Code != "" {
		t.Fatalf("sanity: 1+1 = %q code %q", a.Out, a.Code)
	}
	// A case that errors: codes must be compared, not messages.
	c = Case{Seed: -2, Src: `1 idiv 0`}
	for _, cfg := range Matrix() {
		got := Eval(c, cfg)
		if got.Code != "FOAR0001" {
			t.Fatalf("%s: 1 idiv 0 code = %q, want FOAR0001", cfg.Name, got.Code)
		}
	}
}

// TestMinimizeShrinks: on a currently-diverging pair of hand-made configs
// there is nothing to minimize (the engine agrees everywhere), so Minimize
// must return the generated source unchanged with zero steps.
func TestMinimizeShrinks(t *testing.T) {
	src, steps := Minimize(7, nil)
	if steps != 0 {
		t.Fatalf("seed 7 no longer diverges; Minimize must be a no-op, did %d steps", steps)
	}
	want := Generate(7).Src
	if src != want {
		t.Fatalf("Minimize no-op must return the generated source\n got %q\nwant %q", src, want)
	}
}

// TestFindConfig covers the -config name round trip.
func TestFindConfig(t *testing.T) {
	for _, cfg := range Matrix() {
		got, ok := FindConfig(cfg.Name)
		if !ok || got != cfg {
			t.Fatalf("FindConfig(%q) = %+v, %v", cfg.Name, got, ok)
		}
	}
	if _, ok := FindConfig("O9"); ok {
		t.Fatal("FindConfig must reject unknown names")
	}
	if len(Matrix()) != 19 {
		t.Fatalf("matrix size = %d, want 19 (3 levels × cache × trace + galax + O1/O2 noidx + O0/O2 noshapes + O2 proj/stream)", len(Matrix()))
	}
}
