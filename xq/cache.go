package xq

import (
	"sync"
	"sync/atomic"

	"lopsided/internal/xquery/interp"
	"lopsided/internal/xquery/optimizer"
	"lopsided/internal/xquery/parser"
)

// The process-wide plan cache. Most embedders (the document generator, the
// AWB calculus, the CLIs) compile a small fixed set of programs and then
// evaluate them against many inputs — often from many goroutines. Caching
// the compiled plan makes repeat compilation a map hit.
//
// The key is the source text plus the option fingerprint that affects
// compilation: the optimizer level and the trace-effectfulness flag.
// Everything else in Options is runtime-only configuration (tracers,
// resolvers, limits, policies) and is applied per returned *Query, so
// callers with different runtime options still share one compiled plan.

type planKey struct {
	src            string
	optLevel       OptLevel
	traceEffectful bool
}

// planEntry is one cache slot. The sync.Once makes concurrent first
// requests for the same key compile exactly once; the losers block until
// the winner finishes and then share its result.
type planEntry struct {
	once  sync.Once
	prog  *interp.Program
	stats optimizer.Stats
	err   error
}

var (
	planCache sync.Map // planKey -> *planEntry

	// Cache effectiveness counters, exposed via PlanCacheStats.
	planHits   atomic.Int64
	planMisses atomic.Int64
)

// CompileCached is Compile backed by a process-wide concurrent plan cache.
// The compiled plan is keyed by the source text and the compile-affecting
// options (optimizer level, trace effectfulness); runtime options such as
// tracers, document resolvers, limits, and duplicate-attribute policies are
// applied to the returned *Query without affecting the shared plan.
//
// Compilation errors are cached too: recompiling a bad program is as cheap
// as recompiling a good one.
//
// The cache never evicts. It is intended for the common embedding shape —
// a bounded set of programs compiled from static templates — not for
// caching unbounded user-supplied source; use Compile for one-off programs.
func CompileCached(src string, opts ...Option) (*Query, error) {
	cfg := config{optLevel: O2, traceIsEffectful: true}
	for _, o := range opts {
		o(&cfg)
	}
	key := planKey{src: src, optLevel: cfg.optLevel, traceEffectful: cfg.traceIsEffectful}
	v, ok := planCache.Load(key)
	if !ok {
		v, _ = planCache.LoadOrStore(key, &planEntry{})
	}
	e := v.(*planEntry)
	missed := false
	e.once.Do(func() {
		missed = true
		mod, err := parser.Parse(src)
		if err != nil {
			e.err = err
			return
		}
		e.stats = optimizer.Optimize(mod, optimizer.Options{
			Level:            cfg.optLevel,
			TraceIsEffectful: cfg.traceIsEffectful,
		})
		e.prog, e.err = interp.NewProgram(mod)
	})
	if missed {
		planMisses.Add(1)
	} else {
		planHits.Add(1)
	}
	if e.err != nil {
		return nil, e.err
	}
	return newQuery(e.prog, e.stats, cfg), nil
}

// PlanCacheStats reports how the process-wide plan cache has performed:
// hits, misses, and the number of cached plans (including cached failures).
func PlanCacheStats() (hits, misses, entries int64) {
	planCache.Range(func(any, any) bool { entries++; return true })
	return planHits.Load(), planMisses.Load(), entries
}
