package xq_test

// Tests for the static shape & cardinality analysis as seen through the
// public API: inevitable type errors rejected at Compile time, the
// WithShapes(false) escape hatch restoring the pre-shapes engine, elided
// runtime checks surfacing in EvalStats, the plan cache keeping shaped and
// unshaped plans apart, and EXPLAIN's per-node shape annotations.

import (
	"context"
	"strings"
	"testing"

	"lopsided/xq"
)

// TestCompileStaticTypeError: a query that must raise XPTY0004 on every
// evaluation is rejected by Compile with a static error; with shapes off it
// compiles and fails at Eval with the same code, as before.
func TestCompileStaticTypeError(t *testing.T) {
	cases := []string{
		`1 + "a"`,
		`-"x"`,
		`1 lt "a"`,
		`"a" mod 2`,
	}
	for _, src := range cases {
		_, err := xq.Compile(src)
		if err == nil {
			t.Fatalf("Compile(%q): expected static XPTY0004, got nil", src)
		}
		if !xq.IsStaticError(err) {
			t.Fatalf("Compile(%q): error not static: %v", src, err)
		}
		if code := xq.ErrorCode(err); code != "XPTY0004" {
			t.Fatalf("Compile(%q): code = %s, want XPTY0004", src, code)
		}
		var ee *xq.EvalError
		if e, ok := err.(*xq.EvalError); ok {
			ee = e
		} else {
			t.Fatalf("Compile(%q): error type %T, want *xq.EvalError", src, err)
		}
		if ee.Pos.Line == 0 {
			t.Fatalf("Compile(%q): static error carries no source span: %v", src, err)
		}

		q, err := xq.Compile(src, xq.WithShapes(false))
		if err != nil {
			t.Fatalf("Compile(%q) with shapes off: %v", src, err)
		}
		_, err = q.Eval(context.Background(), nil)
		if err == nil || xq.ErrorCode(err) != "XPTY0004" {
			t.Fatalf("Eval(%q) with shapes off: err = %v, want runtime XPTY0004", src, err)
		}
		if xq.IsStaticError(err) {
			t.Fatalf("Eval(%q): runtime error marked static", src)
		}
	}
}

// TestStaticErrorOnlyWhenInevitable: conditional positions must never raise
// statically — the error may not happen at runtime.
func TestStaticErrorOnlyWhenInevitable(t *testing.T) {
	srcs := []string{
		`if (1 eq 1) then 2 else 1 + "a"`,
		`try { 1 + "a" } catch { 0 }`,
		`for $i in (1, 2) return if ($i eq 3) then 1 + "a" else $i`,
	}
	for _, src := range srcs {
		q, err := xq.Compile(src)
		if err != nil {
			t.Fatalf("Compile(%q): unexpected static error %v", src, err)
		}
		if _, err := q.Eval(context.Background(), nil); err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
	}
}

// TestShapeChecksElidedStats: shape-elidable coercions are counted per
// evaluation; with shapes off the counter stays zero.
func TestShapeChecksElidedStats(t *testing.T) {
	src := `declare function local:f($n as xs:integer) { if ($n lt 2) then $n else $n - 1 };
		local:f(7) + local:f(9)`
	var st xq.EvalStats
	q, err := xq.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.Eval(context.Background(), nil, xq.WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if got := xq.Serialize(out); got != "14" {
		t.Fatalf("result = %q, want 14", got)
	}
	if st.ShapeChecksElided == 0 {
		t.Fatalf("ShapeChecksElided = 0, want > 0\nstats: %s", st.String())
	}

	qOff, err := xq.Compile(src, xq.WithShapes(false))
	if err != nil {
		t.Fatal(err)
	}
	var stOff xq.EvalStats
	outOff, err := qOff.Eval(context.Background(), nil, xq.WithStats(&stOff))
	if err != nil {
		t.Fatal(err)
	}
	if xq.Serialize(outOff) != xq.Serialize(out) {
		t.Fatalf("shapes-off result %q differs from shapes-on %q", xq.Serialize(outOff), xq.Serialize(out))
	}
	if stOff.ShapeChecksElided != 0 {
		t.Fatalf("shapes off but ShapeChecksElided = %d", stOff.ShapeChecksElided)
	}
}

// TestExplainShapeAnnotations: with shapes on, EXPLAIN annotates plan nodes
// with inferred shapes and reports the result shape; with shapes off the
// dump is annotation-free.
func TestExplainShapeAnnotations(t *testing.T) {
	src := `let $x := 1 + 2 return ($x, "a")`
	q, err := xq.Compile(src, xq.WithOptLevel(xq.O0))
	if err != nil {
		t.Fatal(err)
	}
	exp := q.Explain()
	if !strings.Contains(exp, "::{") {
		t.Fatalf("Explain lacks shape annotations:\n%s", exp)
	}
	if !strings.Contains(exp, "shapes: result ") {
		t.Fatalf("Explain lacks result shape line:\n%s", exp)
	}

	qOff, err := xq.Compile(src, xq.WithOptLevel(xq.O0), xq.WithShapes(false))
	if err != nil {
		t.Fatal(err)
	}
	if expOff := qOff.Explain(); strings.Contains(expOff, "::{") {
		t.Fatalf("Explain with shapes off still annotated:\n%s", expOff)
	}
}

// TestCacheKeysShapesApart: the plan cache must not hand a shaped plan to a
// WithShapes(false) caller or vice versa.
func TestCacheKeysShapesApart(t *testing.T) {
	src := `1 + "a"`
	if _, err := xq.CompileCached(src); err == nil || !xq.IsStaticError(err) {
		t.Fatalf("CompileCached: want static error, got %v", err)
	}
	q, err := xq.CompileCached(src, xq.WithShapes(false))
	if err != nil {
		t.Fatalf("CompileCached with shapes off hit the shaped entry: %v", err)
	}
	if _, err := q.Eval(context.Background(), nil); err == nil {
		t.Fatal("expected runtime XPTY0004")
	}
	// And the shaped failure must still be served to shaped callers.
	if _, err := xq.CompileCached(src); err == nil || !xq.IsStaticError(err) {
		t.Fatalf("CompileCached after shapes-off compile: want static error, got %v", err)
	}
}

// TestUpdateNeverStatic: update programs never raise static shape errors,
// even when a statement embeds an inevitable type error — the statement
// pipeline keeps its own error order.
func TestUpdateNeverStatic(t *testing.T) {
	doc, err := xq.ParseXML(`<doc><a/></doc>`)
	if err != nil {
		t.Fatal(err)
	}
	up, err := xq.CompileUpdate(`delete /doc/a[1 + "a"];`)
	if err != nil {
		t.Fatalf("CompileUpdate raised: %v", err)
	}
	if _, err := up.Transform(context.Background(), doc); err == nil || xq.ErrorCode(err) != "XPTY0004" {
		t.Fatalf("Transform err = %v, want runtime XPTY0004", err)
	}
}
