// Package shapes implements static shape and cardinality inference over the
// optimized XQuery AST: a forward pass computing, per expression, a small
// lattice of facts — occurrence bounds, an atomic-type upper bound,
// node-free-ness, and totality (cannot raise) — in the spirit of the regular
// expression subtyping line of work the roadmap cites.
//
// The facts feed four consumers: the optimizer's dead-let eliminability test
// (a real totality analysis instead of a syntactic whitelist), the closure
// compiler's cardinality/Atomize check elision, compile-time XPTY diagnostics
// with source spans, and EXPLAIN's per-node shape annotations.
//
// Soundness invariant: a Shape describes the VALUE an expression produces on
// successful evaluation; Total additionally promises success. Occurrence and
// kind bounds therefore hold independently of totality — if the expression
// raises, no value flows and the bounds are vacuous. Resource-limit errors
// (the sandbox's LOPS* family) are exempt from totality everywhere: they can
// strike any expression, are uncatchable, and the differential harness never
// compares step budgets across shape configurations.
package shapes

import "strings"

// Occ is an occurrence bound: how many items an expression's value may hold.
// The lattice is ordered by interval inclusion with OccStar on top; OccEmpty
// and OccOne are incomparable bottoms.
type Occ uint8

// Occurrence bounds.
const (
	// OccEmpty: exactly the empty sequence.
	OccEmpty Occ = iota
	// OccOne: exactly one item.
	OccOne
	// OccOpt: zero or one item.
	OccOpt
	// OccPlus: one or more items.
	OccPlus
	// OccStar: any number of items (no information).
	OccStar
)

// Lo returns the minimum item count (0 or 1) the bound admits.
func (o Occ) Lo() int {
	if o == OccOne || o == OccPlus {
		return 1
	}
	return 0
}

// Hi returns the maximum item count the bound admits, with 2 standing in for
// "unbounded".
func (o Occ) Hi() int {
	switch o {
	case OccEmpty:
		return 0
	case OccOne, OccOpt:
		return 1
	}
	return 2
}

// occFromBounds canonicalizes interval bounds back into an Occ.
func occFromBounds(lo, hi int) Occ {
	if hi <= 0 {
		return OccEmpty
	}
	if hi == 1 {
		if lo >= 1 {
			return OccOne
		}
		return OccOpt
	}
	if lo >= 1 {
		return OccPlus
	}
	return OccStar
}

// Join is the least upper bound: the tightest Occ admitting both operands
// (the if/typeswitch/try rule).
func (o Occ) Join(p Occ) Occ {
	return occFromBounds(min(o.Lo(), p.Lo()), max(o.Hi(), p.Hi()))
}

// Concat is sequence concatenation: item counts add (the comma rule).
func (o Occ) Concat(p Occ) Occ {
	return occFromBounds(min(o.Lo()+p.Lo(), 1), min(o.Hi()+p.Hi(), 2))
}

// Product is iteration: item counts multiply (the FLWOR for rule — a body
// producing p per binding over a range producing o).
func (o Occ) Product(p Occ) Occ {
	return occFromBounds(o.Lo()*p.Lo(), min(o.Hi()*p.Hi(), 2))
}

// Sub reports o ⊑ p: every count o admits, p admits too.
func (o Occ) Sub(p Occ) bool {
	return p.Lo() <= o.Lo() && o.Hi() <= p.Hi()
}

// String renders the bound as an XQuery-style occurrence indicator.
func (o Occ) String() string {
	switch o {
	case OccEmpty:
		return "0"
	case OccOne:
		return "1"
	case OccOpt:
		return "?"
	case OccPlus:
		return "+"
	}
	return "*"
}

// Atom is a bitset upper bound over the atomic types an expression's value
// may contain. ANone (no bits) means the value holds no atomic items; AAny is
// the uninformative top. Join is bitwise union.
type Atom uint8

// Atomic-kind bits.
const (
	AInt Atom = 1 << iota
	ADec
	ADbl
	ABool
	AStr
	AUntyped
)

// Derived bounds.
const (
	ANone Atom = 0
	ANum       = AInt | ADec | ADbl
	AAny       = ANum | ABool | AStr | AUntyped
)

// Sub reports a ⊆ b.
func (a Atom) Sub(b Atom) bool { return a&^b == 0 }

// String renders the kind bound compactly.
func (a Atom) String() string {
	switch a {
	case ANone:
		return "none"
	case ANum:
		return "numeric"
	case AAny:
		return "any"
	}
	var parts []string
	for _, e := range [...]struct {
		bit  Atom
		name string
	}{{AInt, "int"}, {ADec, "dec"}, {ADbl, "dbl"}, {ABool, "bool"}, {AStr, "str"}, {AUntyped, "untyped"}} {
		if a&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, "|")
}

// Shape is the full fact lattice for one expression.
type Shape struct {
	// Occ bounds the value's item count.
	Occ Occ
	// Atomic bounds the atomic types of the value's atomic items; nodes are
	// tracked by NodeFree, not here.
	Atomic Atom
	// NodeFree reports the value can never contain nodes.
	NodeFree bool
	// Total reports evaluation cannot raise a non-limit error.
	Total bool
}

// Unknown is the uninformative top element.
var Unknown = Shape{Occ: OccStar, Atomic: AAny}

// emptyShape describes a value known to be ().
func emptyShape(total bool) Shape {
	return Shape{Occ: OccEmpty, Atomic: ANone, NodeFree: true, Total: total}
}

// one builds a total singleton atomic shape (the literal rule).
func one(a Atom) Shape {
	return Shape{Occ: OccOne, Atomic: a, NodeFree: true, Total: true}
}

// norm canonicalizes: a provably empty value holds no items of any kind.
func (s Shape) norm() Shape {
	if s.Occ == OccEmpty {
		s.Atomic = ANone
		s.NodeFree = true
	}
	return s
}

// Join is the least upper bound of two alternative values (branches).
func Join(a, b Shape) Shape {
	return Shape{
		Occ:      a.Occ.Join(b.Occ),
		Atomic:   a.Atomic | b.Atomic,
		NodeFree: a.NodeFree && b.NodeFree,
		Total:    a.Total && b.Total,
	}.norm()
}

// Concat combines two values evaluated in sequence (the comma rule).
func Concat(a, b Shape) Shape {
	return Shape{
		Occ:      a.Occ.Concat(b.Occ),
		Atomic:   a.Atomic | b.Atomic,
		NodeFree: a.NodeFree && b.NodeFree,
		Total:    a.Total && b.Total,
	}.norm()
}

// atomizedKind bounds the atomic kinds after xdm.Atomize: atomics pass
// through; any node becomes xs:untypedAtomic.
func (s Shape) atomizedKind() Atom {
	if s.NodeFree {
		return s.Atomic
	}
	return s.Atomic | AUntyped
}

// allNodes reports the value can contain only nodes (or be empty).
func (s Shape) allNodes() bool { return s.Atomic == ANone }

// ebvSafe reports xdm.EffectiveBool cannot raise on the value: FORG0006
// needs a multi-item sequence whose first item is not a node, so a bound of
// at most one item is safe for every kind, and an all-node value is safe at
// any length (node-first short-circuits to true).
func (s Shape) ebvSafe() bool { return s.Occ.Hi() <= 1 || s.allNodes() }

// bounded reports the value holds at most one item.
func (s Shape) bounded() bool { return s.Occ.Hi() <= 1 }

// ElidableAtomize reports the runtime's Atomize+AtMostOne operand dispatch
// can compile away: at most one item and never a node, so atomization is
// the identity and the cardinality check cannot fail. Consumers must still
// guard the fast path cheaply (length and node checks) so a wrong shape
// costs speed, not correctness.
func (s Shape) ElidableAtomize() bool { return s.Occ.Hi() <= 1 && s.NodeFree }

// ElidableEBV reports a condition read can skip xdm.EffectiveBool: at most
// one item, never a node, and only boolean atomics — so the effective
// boolean value is false (empty) or the item itself.
func (s Shape) ElidableEBV() bool {
	return s.Occ.Hi() <= 1 && s.NodeFree && s.Atomic.Sub(ABool)
}

// String renders the shape for EXPLAIN annotations, e.g. {1 int nf tot},
// {* node}, {? any}.
func (s Shape) String() string {
	var b strings.Builder
	b.WriteByte('{')
	b.WriteString(s.Occ.String())
	b.WriteByte(' ')
	switch {
	case s.Occ == OccEmpty:
		b.WriteString("()")
	case s.Atomic == ANone:
		b.WriteString("node")
	case s.NodeFree:
		b.WriteString(s.Atomic.String())
	default:
		b.WriteString(s.Atomic.String())
		b.WriteString("|node")
	}
	if s.NodeFree && s.Occ != OccEmpty && s.Atomic != ANone {
		b.WriteString(" nf")
	}
	if s.Total {
		b.WriteString(" tot")
	}
	b.WriteByte('}')
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
