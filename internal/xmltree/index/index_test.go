package index

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"lopsided/internal/xmltree"
)

const doc = `<r>
  <item n="1" k="k0"><sub/>alpha</item>
  <item n="2" k="k1">beta<item n="2.1" k="k0"/></item>
  <group><item n="3" k="k2">gamma</item><other k="k0"/></group>
  <empty/>
</r>`

func frozenDoc(t *testing.T, src string) *xmltree.Node {
	t.Helper()
	d, err := xmltree.ParseTrimmed(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return xmltree.Freeze(d)
}

func attr(n *xmltree.Node, name string) string {
	v, _ := n.Attr(name)
	return v
}

func names(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

func TestForRequiresFrozenRoot(t *testing.T) {
	d, err := xmltree.ParseTrimmed(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := For(d); ok {
		t.Fatal("For served an index for an unfrozen root")
	}
	xmltree.Freeze(d)
	ix, ok := For(d)
	if !ok || ix == nil {
		t.Fatal("For refused a frozen root")
	}
	// Memoized: same index for every caller.
	ix2, ok := For(d)
	if !ok || ix2 != ix {
		t.Fatal("For did not memoize the index on the root")
	}
	if got, ok := Peek(d); !ok || got != ix {
		t.Fatal("Peek did not find the memoized index")
	}
}

func TestDescendantsDocOrder(t *testing.T) {
	d := frozenDoc(t, doc)
	ix, _ := For(d)

	got, served := ix.Descendants(d, "item")
	if !served {
		t.Fatal("probe not served")
	}
	// Must equal the tree-walk result exactly (order and identity).
	var want []*xmltree.Node
	for _, n := range xmltree.DescendantAxis(d) {
		if n.Kind == xmltree.ElementNode && n.Name == "item" {
			want = append(want, n)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: index and walk disagree on identity/order", i)
		}
	}

	// Scoped to an interior context: only that subtree's descendants.
	r := d.Children()[0]
	group := r.Children()[2]
	sub, served := ix.Descendants(group, "item")
	if !served || len(sub) != 1 || attr(sub[0], "n") != "3" {
		t.Fatalf("scoped probe wrong: served=%v %v", served, names(sub))
	}
	// Context excluded from its own descendant set.
	item2 := r.Children()[1]
	nested, _ := ix.Descendants(item2, "item")
	if len(nested) != 1 || attr(nested[0], "n") != "2.1" {
		t.Fatalf("descendant probe should exclude context: %v", names(nested))
	}
}

func TestDescendantsAttrEq(t *testing.T) {
	d := frozenDoc(t, doc)
	ix, _ := For(d)
	got, served := ix.DescendantsAttrEq(d, "item", "k", "k0")
	if !served || len(got) != 2 {
		t.Fatalf("want 2 k0 items, got %d (served=%v)", len(got), served)
	}
	if attr(got[0], "n") != "1" || attr(got[1], "n") != "2.1" {
		t.Fatalf("wrong nodes: %s %s", attr(got[0], "n"), attr(got[1], "n"))
	}
	// <other k="k0"/> must not leak in despite matching the value index.
	for _, n := range got {
		if n.Name != "item" {
			t.Fatalf("non-item element served: %s", n.Name)
		}
	}
	if got, _ := ix.DescendantsAttrEq(d, "item", "k", "nope"); len(got) != 0 {
		t.Fatalf("missing value matched %d nodes", len(got))
	}
}

func TestDescendantsAttrEqDuplicateAttrs(t *testing.T) {
	// Duplicate attributes (Galax-bug trees): the predicate is existential
	// over every same-named attribute, and the owner lists once.
	d := xmltree.NewDocument()
	r := xmltree.NewElement("r")
	e := xmltree.NewElement("item")
	e.AttachAttrDup(xmltree.NewAttr("k", "a"))
	e.AttachAttrDup(xmltree.NewAttr("k", "b"))
	e.AttachAttrDup(xmltree.NewAttr("k", "a"))
	r.AppendChild(e)
	d.AppendChild(r)
	xmltree.Freeze(d)

	ix, _ := For(d)
	for _, v := range []string{"a", "b"} {
		got, served := ix.DescendantsAttrEq(d, "item", "k", v)
		if !served || len(got) != 1 || got[0] != e {
			t.Fatalf("value %q: want the one owner once, got %d", v, len(got))
		}
	}
	if !AttrAnyEq(e, "k", "b") || AttrAnyEq(e, "k", "c") {
		t.Fatal("AttrAnyEq must be existential over duplicate attributes")
	}
}

func TestChildrenAttrEq(t *testing.T) {
	d := frozenDoc(t, doc)
	ix, _ := For(d)
	r := d.Children()[0]
	got, served := ix.ChildrenAttrEq(r, "item", "k", "k0")
	if !served || len(got) != 1 || attr(got[0], "n") != "1" {
		// item n=2.1 has k0 but is a grandchild; other k0 owners aren't items.
		t.Fatalf("want only the direct k0 item child, got %v", names(got))
	}
}

func TestChildMayExistSynopsis(t *testing.T) {
	d := frozenDoc(t, doc)
	ix, _ := For(d)
	r := d.Children()[0]
	if exists, answered := ix.ChildMayExist(r, "item"); !answered || !exists {
		t.Fatal("synopsis denied an existing child path")
	}
	if exists, answered := ix.ChildMayExist(r, "nothere"); !answered || exists {
		t.Fatal("synopsis failed to prune a missing child path")
	}
	// Path-sensitivity: item exists under r and under group, not under empty.
	empty := r.Children()[3]
	if exists, answered := ix.ChildMayExist(empty, "item"); !answered || exists {
		t.Fatal("synopsis must be path-sensitive, not name-global")
	}
	// Foreign node: unanswered, caller walks.
	foreign := xmltree.NewElement("x")
	if _, answered := ix.ChildMayExist(foreign, "item"); answered {
		t.Fatal("synopsis answered for a node outside the tree")
	}
}

func TestForeignContextFallsBack(t *testing.T) {
	d := frozenDoc(t, doc)
	ix, _ := For(d)
	if _, served := ix.Descendants(xmltree.NewElement("x"), "item"); served {
		t.Fatal("index served a context node from another tree")
	}
	// A clone of the tree is a different identity universe: its nodes must
	// not be served from the source's index.
	clone := d.Clone()
	cloneR := clone.Children()[0]
	if _, served := ix.Descendants(cloneR, "item"); served {
		t.Fatal("index served a materialized clone node")
	}
}

func TestCloneNeverSeesSourceIndex(t *testing.T) {
	d := frozenDoc(t, doc)
	if _, ok := For(d); !ok {
		t.Fatal("source index")
	}
	clone := d.Clone()
	// The clone shares the source's content but is mutable and has fresh
	// identities: it must not be index-cacheable, and For must refuse it.
	if clone.IndexCacheable() {
		t.Fatal("lazy clone claims to be index-cacheable")
	}
	if _, ok := For(clone); ok {
		t.Fatal("For served an index for a mutable lazy clone")
	}
}

// TestIndexOrderMatchesSortDocOrder is the ISSUE's doc-order seam check at
// the tree layer: index-produced node lists and xmltree.SortDocOrder must
// agree on ordering AND dedup — for nodes of the frozen source and for
// nodes of a lazily-materialized COW clone that still shares the source's
// storage. (The engine-level O0–O2 cross-check over cloned trees lives in
// xq/accesspath_test.go; this pins the identity-level invariant the
// interpreter's SortDoc normalization relies on.)
func TestIndexOrderMatchesSortDocOrder(t *testing.T) {
	d := frozenDoc(t, doc)
	ix, _ := For(d)
	fromIndex, served := ix.Descendants(d, "item")
	if !served || len(fromIndex) != 4 {
		t.Fatalf("probe: served=%v n=%d", served, len(fromIndex))
	}
	// Scramble the index's list (reverse + duplicate every node): SortDocOrder
	// must restore exactly the index's order with duplicates removed.
	scrambled := make([]*xmltree.Node, 0, 2*len(fromIndex))
	for i := len(fromIndex) - 1; i >= 0; i-- {
		scrambled = append(scrambled, fromIndex[i], fromIndex[i])
	}
	sorted := xmltree.SortDocOrder(scrambled)
	if len(sorted) != len(fromIndex) {
		t.Fatalf("SortDocOrder kept %d nodes, want %d (dedup)", len(sorted), len(fromIndex))
	}
	for i := range sorted {
		if sorted[i] != fromIndex[i] {
			t.Fatalf("node %d: SortDocOrder and index disagree on order/identity", i)
		}
	}

	// Same seam on a shared COW clone: the clone is walked (never index
	// served), but SortDocOrder over its scrambled nodes must reproduce the
	// walk order — clones materialize lazily out of the source's storage and
	// a path-based comparison must not be confused by that sharing.
	clone := d.Clone()
	var walked []*xmltree.Node
	for _, n := range xmltree.DescendantAxis(clone) {
		if n.Kind == xmltree.ElementNode && n.Name == "item" {
			walked = append(walked, n)
		}
	}
	if len(walked) != len(fromIndex) {
		t.Fatalf("clone walk found %d items, want %d", len(walked), len(fromIndex))
	}
	cscr := make([]*xmltree.Node, 0, 2*len(walked))
	for i := len(walked) - 1; i >= 0; i-- {
		cscr = append(cscr, walked[i], walked[i])
	}
	csorted := xmltree.SortDocOrder(cscr)
	if len(csorted) != len(walked) {
		t.Fatalf("clone SortDocOrder kept %d nodes, want %d", len(csorted), len(walked))
	}
	for i := range csorted {
		if csorted[i] != walked[i] {
			t.Fatalf("clone node %d: SortDocOrder and walk disagree", i)
		}
		if csorted[i] == fromIndex[i] {
			t.Fatalf("clone node %d shares identity with the source — clone isolation broken", i)
		}
	}
}

func TestInfoLazySections(t *testing.T) {
	d := frozenDoc(t, doc)
	ix, _ := For(d)
	if info := ix.Info(); info.Built || info.AttrsBuilt {
		t.Fatalf("sections built eagerly: %+v", info)
	}
	ix.Descendants(d, "item")
	if info := ix.Info(); !info.Built || info.AttrsBuilt {
		t.Fatalf("struct probe built wrong sections: %+v", info)
	}
	if info := ix.Info(); info.Elements != 9 || info.Names != 6 {
		// r, 3×item + nested item, sub, group, other, empty = 9 elements;
		// distinct names: r, item, sub, group, other, empty = 6.
		t.Fatalf("info counts wrong: %+v", info)
	}
	ix.DescendantsAttrEq(d, "item", "k", "k0")
	if info := ix.Info(); !info.AttrsBuilt || info.AttrKeys == 0 {
		t.Fatalf("value section not built: %+v", info)
	}
}

// TestInvalidationUnderMutationRace is the ISSUE satellite: 16 goroutines
// mutate lazily-materialized clones of an indexed frozen source while other
// goroutines probe the source index. Clones must never be served the
// source's (now semantically divergent) index, and the source's own answers
// must stay correct throughout. Run with -race.
func TestInvalidationUnderMutationRace(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, `<item n="%d" k="k%d"><sub/></item>`, i, i%7)
	}
	b.WriteString("</r>")
	d := frozenDoc(t, b.String())
	ix, ok := For(d)
	if !ok {
		t.Fatal("no source index")
	}
	baseline, _ := ix.Descendants(d, "item")
	if len(baseline) != 200 {
		t.Fatalf("baseline: %d", len(baseline))
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				clone := d.Clone()
				// Mutate the lazily-materialized clone: remove children,
				// rename elements, add items the source never had.
				r := clone.Children()[0]
				kids := r.Children()
				if g%2 == 0 && len(kids) > 0 {
					r.SetChildren(kids[:len(kids)/2])
				} else {
					extra := xmltree.NewElement("item")
					extra.SetAttr("n", fmt.Sprintf("x%d-%d", g, iter))
					r.AppendChild(extra)
				}
				// A mutated clone must never observe the stale source index.
				if clone.IndexCacheable() {
					errs <- "mutated clone became index-cacheable"
					return
				}
				if _, served := For(clone); served {
					errs <- "For served an index for a mutated clone"
					return
				}
				if _, served := ix.Descendants(r, "item"); served {
					errs <- "source index served a clone context node"
					return
				}
				// The frozen source must be unaffected by clone mutation.
				got, served := ix.Descendants(d, "item")
				if !served || len(got) != 200 {
					errs <- fmt.Sprintf("source probe drifted: served=%v n=%d", served, len(got))
					return
				}
				gotEq, _ := ix.DescendantsAttrEq(d, "item", "k", "k3")
				for _, n := range gotEq {
					if !AttrAnyEq(n, "k", "k3") {
						errs <- "value probe returned a non-matching node"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestStatsCounters(t *testing.T) {
	before := Stats()
	d := frozenDoc(t, doc)
	ix, _ := For(d)
	ix.Descendants(d, "item")                 // hit (+struct build)
	ix.ChildMayExist(d.Children()[0], "gone") // prune
	ix.Descendants(xmltree.NewElement("x"), "item")
	after := Stats()
	if after.Builds <= before.Builds || after.Hits <= before.Hits ||
		after.Prunes <= before.Prunes || after.Fallbacks <= before.Fallbacks {
		t.Fatalf("counters did not advance: before=%+v after=%+v", before, after)
	}
}
