package xmltree

import (
	"strings"
	"testing"
)

// parityInputs are documents — valid and malformed — that the string parser
// and the streaming reader must judge identically: same tree or same
// *ParseError text and position.
var parityInputs = []string{
	`<a/>`,
	`<a></a>`,
	`<a>text</a>`,
	`<a b="1" c="2">x<d/>y</a>`,
	`<?xml version="1.0"?><a/>`,
	`<?xml version="1.0"?>
<!DOCTYPE a [<!ELEMENT a EMPTY>]>
<!-- before --><a><!-- in --><?pi  data?></a><!-- after -->`,
	`<a>x &lt;&gt;&amp;&quot;&apos; &#65;&#x42; y</a>`,
	`<a><![CDATA[<raw&stuff>]]></a>`,
	`<a>pre<![CDATA[mid]]>post</a>`,
	`<a>x]]<![CDATA[>y]]>z</a>`, // "]]" before CDATA must not complete "]]>"
	`<a b="&amp;&#x3C;"/>`,
	`<a b='sq'/>`,
	"<a>\n  <b>1</b>\n  <b>2</b>\n</a>",
	`<ns:a ns:b="1"><ns:c/></ns:a>`,
	`<a><b><c><d>deep</d></c></b></a>`,
	`<a - comment with --- dashes -->x</a>`, // malformed: '-' not a name start? actually '-' fails name
	`<a><!-- - -- ---></a>`,                 // tricky comment terminator
	`<a><?t?></a>`,
	`<a><?t   leading ws?></a>`,

	// Malformed inputs: the error text and position must match exactly.
	``,
	`   `,
	`<a>`,
	`<a><b></a></b>`,
	`<a></b>`,
	`<a`,
	`<a b></a>`,
	`<a b=></a>`,
	`<a b="x></a>`,
	`<a b="x" b="y"/>`,
	`<a>&unknown;</a>`,
	`<a>&#xZZ;</a>`,
	`<a>&#99999999999;</a>`,
	`<a>&noend</a>`,
	`<a b="&bad;"/>`,
	`<a b="&noend"/>`,
	`<a b="<"/>`,
	`<a/><b/>`,
	`text at top`,
	`<a><!-- unterminated</a>`,
	`<a><![CDATA[unterminated</a>`,
	`<a><?pi unterminated</a>`,
	`<?xml unterminated`,
	`<!DOCTYPE unterminated`,
	`<1bad/>`,
	`<a><1bad/></a>`,
	`<a>x<!DOCTYPE b></a>`, // DOCTYPE in content is "expected name"
}

// checkParity asserts Parse and ParseReader agree on input under opts.
func checkParity(t *testing.T, input string, opts ParseOptions) {
	t.Helper()
	want, wantErr := ParseWith(input, opts)
	got, gotErr := ParseReaderWith(strings.NewReader(input), opts)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("input %q: Parse err=%v, ParseReader err=%v", input, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("input %q:\n  Parse err:       %v\n  ParseReader err: %v", input, wantErr, gotErr)
		}
		return
	}
	ws, gs := want.String(), got.String()
	if ws != gs {
		t.Fatalf("input %q:\n  Parse:       %s\n  ParseReader: %s", input, ws, gs)
	}
	if wc, gc := CountNodes(want), CountNodes(got); wc != gc {
		t.Fatalf("input %q: node counts differ: %d vs %d", input, wc, gc)
	}
}

func TestParseReaderParity(t *testing.T) {
	for _, in := range parityInputs {
		checkParity(t, in, ParseOptions{})
	}
}

func TestParseReaderParityOptions(t *testing.T) {
	for _, in := range parityInputs {
		checkParity(t, in, ParseOptions{TrimWhitespace: true})
		checkParity(t, in, ParseOptions{DropComments: true})
		checkParity(t, in, ParseOptions{TrimWhitespace: true, DropComments: true})
		checkParity(t, in, ParseOptions{MaxDepth: 3})
	}
}

func TestParseReaderDepthLimit(t *testing.T) {
	deep := strings.Repeat("<a>", 50) + strings.Repeat("</a>", 50)
	checkParity(t, deep, ParseOptions{MaxDepth: 10})
	checkParity(t, deep, ParseOptions{MaxDepth: 50})
	checkParity(t, deep, ParseOptions{})
}

func TestScannerBytesRead(t *testing.T) {
	in := `<a><b>x</b></a>`
	s := NewScanner(strings.NewReader(in), ParseOptions{})
	for {
		tok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
	}
	if got := s.BytesRead(); got != int64(len(in)) {
		t.Fatalf("BytesRead = %d, want %d", got, len(in))
	}
}

const projDoc = `<r>
  <item n="1" k="ka"><title>first</title><body>b1</body></item>
  <skipme><deep><deeper>nothing here</deeper></deep></skipme>
  <item n="2" k="kb"><title>second</title><body>b2</body></item>
  <other><item n="3" k="kc"><title>nested</title></item></other>
</r>`

func mustProject(t *testing.T, doc string, proj *Projection) (*Node, ProjStats) {
	t.Helper()
	n, st, err := ParseProjectedStats(strings.NewReader(doc), proj, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return n, st
}

func TestProjectedShellPath(t *testing.T) {
	// count(/r/item): shells only, no attrs, no text, no nested items.
	proj := &Projection{Paths: []ProjPath{{Steps: []ProjStep{{Name: "r"}, {Name: "item"}}}}}
	n, st := mustProject(t, projDoc, proj)
	if got := n.String(); got != `<r><item/><item/></r>` {
		t.Fatalf("shell projection = %s", got)
	}
	if st.ElementsPruned == 0 || st.ElementsRetained != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProjectedSubtreeDescendant(t *testing.T) {
	// //item with subtree: all three items in full, ancestors as shells.
	proj := &Projection{Paths: []ProjPath{{Steps: []ProjStep{{Name: "item", Desc: true}}, Subtree: true}}}
	n, _ := mustProject(t, projDoc, proj)
	out := n.String()
	for _, want := range []string{`<title>first</title>`, `<title>second</title>`, `<title>nested</title>`, `n="3"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("projection %s missing %q", out, want)
		}
	}
	if strings.Contains(out, "skipme") || strings.Contains(out, "deeper") {
		t.Fatalf("projection retained a dead branch: %s", out)
	}
	// Ancestor retention: the nested item's <other> parent must be a shell.
	if !strings.Contains(out, "<other>") {
		t.Fatalf("projection dropped a required ancestor: %s", out)
	}
}

func TestProjectedAttributeOnly(t *testing.T) {
	// //item/@n: shells carrying only the n attribute.
	proj := &Projection{Paths: []ProjPath{{Steps: []ProjStep{{Name: "item", Desc: true}}, Attrs: []string{"n"}}}}
	n, _ := mustProject(t, projDoc, proj)
	out := n.String()
	if !strings.Contains(out, `n="1"`) || !strings.Contains(out, `n="3"`) {
		t.Fatalf("attribute-only projection lost @n: %s", out)
	}
	if strings.Contains(out, `k="`) || strings.Contains(out, "title") {
		t.Fatalf("attribute-only projection kept too much: %s", out)
	}
}

func TestProjectedDescUnderDesc(t *testing.T) {
	// //other//title: `//` under `//`, including repeated names on the spine.
	doc := `<r><other><x><other><title>inner</title></other></x><title>outer-other</title></other><title>top</title></r>`
	proj := &Projection{Paths: []ProjPath{{
		Steps:   []ProjStep{{Name: "other", Desc: true}, {Name: "title", Desc: true}},
		Subtree: true,
	}}}
	n, _ := mustProject(t, doc, proj)
	out := n.String()
	if !strings.Contains(out, "inner") || !strings.Contains(out, "outer-other") {
		t.Fatalf("desc-under-desc lost a match: %s", out)
	}
	if strings.Contains(out, ">top<") {
		t.Fatalf("desc-under-desc kept a non-match: %s", out)
	}
}

func TestProjectedWildcardAndPrefix(t *testing.T) {
	doc := `<r><ns:a><keep>x</keep></ns:a><b><keep>y</keep></b></r>`
	proj := &Projection{Paths: []ProjPath{{
		Steps:   []ProjStep{{Name: "r"}, {Name: "ns:*"}, {Name: "keep"}},
		Subtree: true,
	}}}
	n, _ := mustProject(t, doc, proj)
	out := n.String()
	if !strings.Contains(out, ">x<") || strings.Contains(out, ">y<") {
		t.Fatalf("prefix wildcard projection wrong: %s", out)
	}
}

func TestProjectedMalformedSkippedRegion(t *testing.T) {
	// Errors inside skipped subtrees must still surface, with the same
	// text the string parser reports.
	cases := []string{
		`<r><skip><bad b="1" b="2"/></skip><item/></r>`,
		`<r><skip>&nope;</skip><item/></r>`,
		`<r><skip><x></y></skip><item/></r>`,
		`<r><skip><!-- nope </skip><item/></r>`,
		`<r><skip attr="<"/><item/></r>`,
	}
	proj := &Projection{Paths: []ProjPath{{Steps: []ProjStep{{Name: "item", Desc: true}}}}}
	for _, doc := range cases {
		_, wantErr := Parse(doc)
		if wantErr == nil {
			t.Fatalf("case %q unexpectedly well-formed", doc)
		}
		_, _, gotErr := ParseProjectedStats(strings.NewReader(doc), proj, ParseOptions{})
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Fatalf("case %q: projected err %v, want %v", doc, gotErr, wantErr)
		}
	}
}

func TestProjectedEverything(t *testing.T) {
	// A root-subtree projection must reproduce the full parse exactly.
	proj := &Projection{Paths: []ProjPath{{Subtree: true}}}
	n, _ := mustProject(t, projDoc, proj)
	want := MustParse(projDoc)
	if n.String() != want.String() {
		t.Fatalf("everything projection differs:\n%s\nvs\n%s", n.String(), want.String())
	}
}

func TestProjectedFrozen(t *testing.T) {
	proj := &Projection{Paths: []ProjPath{{Steps: []ProjStep{{Name: "item", Desc: true}}}}}
	n, _ := mustProject(t, projDoc, proj)
	if !n.IndexCacheable() {
		t.Fatal("projected tree is not frozen")
	}
}

func FuzzReaderParity(f *testing.F) {
	for _, in := range parityInputs {
		f.Add(in)
	}
	f.Add(projDoc)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		want, wantErr := Parse(input)
		got, gotErr := ParseReader(strings.NewReader(input))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("Parse err=%v ParseReader err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("error text differs:\n%v\nvs\n%v", wantErr, gotErr)
			}
			return
		}
		if want.String() != got.String() {
			t.Fatalf("trees differ:\n%s\nvs\n%s", want.String(), got.String())
		}
	})
}
