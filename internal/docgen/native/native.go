// Package native is the document generator the paper's team wrote after
// abandoning XQuery — the "Java rewrite", transliterated to Go.
//
// Its shape follows the paper's description: a straightforward recursive
// walk over the template; a rich GenTrouble error carrying "a string
// describing what the error was, plus the inputs that went into causing the
// error", thrown from utility functions like requiredAttr and caught only
// at the top; a mutable visited set and table-of-contents list filled
// during the single generation pass; and a modest second phase that crams
// the computed tables into place "by modifying the in-memory XML data
// structures".
package native

import (
	"fmt"
	"strings"

	"lopsided/internal/awb"
	"lopsided/internal/awb/calculus"
	"lopsided/internal/docgen"
	"lopsided/internal/faultinject"
	"lopsided/internal/xmltree"
)

// GenTrouble is the generator's error type: "an exception carrying quite a
// bit of data — a string describing what the error was, plus the inputs
// that went into causing the error."
type GenTrouble struct {
	Msg       string
	Directive string // template directive being processed
	FocusID   string // focus node, "" when none
}

// Error implements the error interface.
func (e *GenTrouble) Error() string {
	var b strings.Builder
	b.WriteString("docgen: ")
	b.WriteString(e.Msg)
	if e.Directive != "" {
		fmt.Fprintf(&b, " (while processing <%s>", e.Directive)
		if e.FocusID != "" {
			fmt.Fprintf(&b, ", focus %s", e.FocusID)
		}
		b.WriteString(")")
	}
	return b.String()
}

// Options configures a native generator beyond its zero-value defaults.
type Options struct {
	// PropFault, when set, runs before every property read and may return
	// an error to simulate a failing model store (see package faultinject).
	// In FailFast mode the error aborts generation; in Accumulate mode it
	// degrades to a problem entry and an inline problem marker.
	PropFault func(nodeID, prop string) error
}

// Generator is the native document generator. The zero value is usable.
type Generator struct {
	opts Options
}

// New returns a native generator.
func New() *Generator { return &Generator{} }

// NewWith returns a native generator with the given options.
func NewWith(opts Options) *Generator { return &Generator{opts: opts} }

// Name implements docgen.Generator.
func (*Generator) Name() string { return "native" }

// Generate implements docgen.Generator.
func (g *Generator) Generate(model *awb.Model, template *xmltree.Node) (*docgen.Result, error) {
	return g.GenerateMode(model, template, docgen.FailFast)
}

// GenerateMode implements docgen.Generator. The native generator supports
// both modes: an imperative walk can simply note trouble and keep going —
// the degraded path the paper's team could not build in XQuery.
func (g *Generator) GenerateMode(model *awb.Model, template *xmltree.Node, mode docgen.Mode) (*docgen.Result, error) {
	root := template
	if root.Kind == xmltree.DocumentNode {
		root = root.DocumentElement()
	}
	if root == nil || root.Name != "template" {
		return nil, &GenTrouble{Msg: "template root element is not <template>"}
	}
	r := &run{
		model:        model,
		mode:         mode,
		propFault:    g.opts.PropFault,
		visited:      map[string]bool{},
		replacements: map[string][]*xmltree.Node{},
	}
	doc := xmltree.NewDocument()
	kids, err := r.genChildren(root, nil)
	if err != nil {
		return nil, err
	}
	for _, k := range kids {
		doc.AppendChild(k)
	}
	// The mutation phases — trivial in an imperative host, the whole
	// motivation for the rewrite.
	r.fillOmissions(doc)
	r.fillTOC(doc)
	r.spliceMarkers(doc)
	return &docgen.Result{Document: doc, Problems: r.problems}, nil
}

// run is the mutable generation state the functional implementation could
// not have: a visited set, a problems list, and marker replacements.
type run struct {
	model        *awb.Model
	mode         docgen.Mode
	propFault    func(nodeID, prop string) error
	visited      map[string]bool
	problems     []string
	replacements map[string][]*xmltree.Node
	markerOrder  []string
}

// degrade handles recoverable trouble according to the run's mode. In
// Accumulate mode it records the problem and returns an inline marker node
// with a nil error; in FailFast mode it returns the error unchanged.
func (r *run) degrade(err error) ([]*xmltree.Node, error) {
	if r.mode != docgen.Accumulate {
		return nil, err
	}
	r.problems = append(r.problems, err.Error())
	span := xmltree.NewElement("span")
	span.SetAttr("class", docgen.ProblemClass)
	span.AppendChild(xmltree.NewText(err.Error()))
	return []*xmltree.Node{span}, nil
}

// genPart generates one template node, degrading recoverable trouble in
// Accumulate mode so one bad directive costs a marker, not the document.
func (r *run) genPart(t *xmltree.Node, focus *awb.Node) ([]*xmltree.Node, error) {
	part, err := r.gen(t, focus)
	if err != nil && r.mode == docgen.Accumulate && recoverable(err) {
		return r.degrade(err)
	}
	return part, err
}

// recoverable reports whether err is generation trouble a degraded run can
// absorb: the generator's own GenTrouble and injected faults. Anything else
// (a programming error, an engine failure) still aborts.
func recoverable(err error) bool {
	switch err.(type) {
	case *GenTrouble:
		return true
	case *faultinject.FaultError:
		return true
	}
	return false
}

func trouble(t *xmltree.Node, focus *awb.Node, format string, args ...interface{}) error {
	e := &GenTrouble{Msg: fmt.Sprintf(format, args...)}
	if t != nil {
		e.Directive = t.Name
	}
	if focus != nil {
		e.FocusID = focus.ID
	}
	return e
}

// requiredAttr is the paper's requiredChild pattern: fetch or throw, with
// the focus passed along "so that it can throw a more comprehensive error
// message".
func requiredAttr(t *xmltree.Node, name string, focus *awb.Node) (string, error) {
	v, ok := t.Attr(name)
	if !ok {
		return "", trouble(t, focus, "missing required attribute %q", name)
	}
	return v, nil
}

func requiredChild(t *xmltree.Node, name string, focus *awb.Node) (*xmltree.Node, error) {
	for _, c := range t.Children() {
		if c.Kind == xmltree.ElementNode && c.Name == name {
			return c, nil
		}
	}
	return nil, trouble(t, focus, "missing required child <%s>", name)
}

func optionalChild(t *xmltree.Node, name string) *xmltree.Node {
	for _, c := range t.Children() {
		if c.Kind == xmltree.ElementNode && c.Name == name {
			return c
		}
	}
	return nil
}

// genChildren generates all children of a template element. Note the
// contrast with the XQuery version's gen-seq: no per-call error checks —
// errors simply propagate.
func (r *run) genChildren(t *xmltree.Node, focus *awb.Node) ([]*xmltree.Node, error) {
	var out []*xmltree.Node
	for _, c := range t.Children() {
		part, err := r.genPart(c, focus)
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	return out, nil
}

// gen generates one template node: "a quite straightforward recursive walk
// over the XML structure of the template, inspecting each XML element in
// turn", dispatching directives and copying everything else.
func (r *run) gen(t *xmltree.Node, focus *awb.Node) ([]*xmltree.Node, error) {
	switch t.Kind {
	case xmltree.TextNode:
		return []*xmltree.Node{xmltree.NewText(t.Data)}, nil
	case xmltree.CommentNode:
		return []*xmltree.Node{xmltree.NewComment(t.Data)}, nil
	case xmltree.PINode:
		return []*xmltree.Node{xmltree.NewPI(t.Name, t.Data)}, nil
	case xmltree.ElementNode:
		switch t.Name {
		case docgen.DirFor:
			return r.genFor(t, focus)
		case docgen.DirIf:
			return r.genIf(t, focus)
		case docgen.DirLabel:
			return r.genLabel(t, focus)
		case docgen.DirProperty:
			return r.genProperty(t, focus)
		case docgen.DirPropHTML:
			return r.genPropertyHTML(t, focus)
		case docgen.DirSection:
			return r.genSection(t, focus)
		case docgen.DirHeading:
			return nil, trouble(t, focus, "<heading> outside <section>")
		case docgen.DirTocHere, docgen.DirOmissions:
			// Placeholders survive generation; the mutation phases
			// replace them.
			return []*xmltree.Node{t.Clone()}, nil
		case docgen.DirMatrix:
			return r.genMatrix(t, focus)
		case docgen.DirMarker:
			name, err := requiredAttr(t, "name", focus)
			if err != nil {
				return nil, err
			}
			return []*xmltree.Node{xmltree.NewText(name)}, nil
		case docgen.DirReplaceM:
			return nil, r.genReplaceMarker(t, focus)
		default:
			return r.genCopy(t, focus)
		}
	}
	return nil, nil
}

// genCopy copies a non-directive element, generating its children.
func (r *run) genCopy(t *xmltree.Node, focus *awb.Node) ([]*xmltree.Node, error) {
	el := xmltree.NewElement(t.Name)
	for _, a := range t.Attrs() {
		el.SetAttr(a.Name, a.Data)
	}
	kids, err := r.genChildren(t, focus)
	if err != nil {
		return nil, err
	}
	for _, k := range kids {
		el.AppendChild(k)
	}
	return []*xmltree.Node{el}, nil
}

func (r *run) genFor(t *xmltree.Node, focus *awb.Node) ([]*xmltree.Node, error) {
	set, err := r.forSet(t, focus)
	if err != nil {
		return nil, err
	}
	var out []*xmltree.Node
	for _, n := range set {
		r.visited[n.ID] = true
		for _, c := range t.Children() {
			if c.Kind == xmltree.ElementNode && c.Name == docgen.DirQuery {
				continue // the query element is the iteration source
			}
			part, err := r.genPart(c, n)
			if err != nil {
				return nil, err
			}
			out = append(out, part...)
		}
	}
	return out, nil
}

func (r *run) forSet(t *xmltree.Node, focus *awb.Node) ([]*awb.Node, error) {
	if qe := optionalChild(t, docgen.DirQuery); qe != nil {
		q, err := calculus.ParseXMLElement(qe)
		if err != nil {
			return nil, trouble(t, focus, "bad <query>: %v", err)
		}
		set, err := q.EvalNativeFrom(r.model, focus)
		if err != nil {
			return nil, trouble(t, focus, "%v", err)
		}
		return set, nil
	}
	sel, ok := t.Attr("nodes")
	if !ok {
		return nil, trouble(t, focus, "<for> needs a nodes attribute or a <query> child")
	}
	return r.selectNodes(sel, t, focus)
}

// selectNodes evaluates a selector expression.
func (r *run) selectNodes(sel string, t *xmltree.Node, focus *awb.Node) ([]*awb.Node, error) {
	switch {
	case strings.HasPrefix(sel, "all."):
		return r.model.NodesOfType(strings.TrimPrefix(sel, "all.")), nil
	case strings.HasPrefix(sel, "followback."):
		if focus == nil {
			return nil, trouble(t, focus, "selector %q requires a focus", sel)
		}
		return r.model.Incoming(focus, strings.TrimPrefix(sel, "followback.")), nil
	case strings.HasPrefix(sel, "follow."):
		if focus == nil {
			return nil, trouble(t, focus, "selector %q requires a focus", sel)
		}
		rest := strings.TrimPrefix(sel, "follow.")
		rel, targetType := rest, ""
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			rel, targetType = rest[:i], rest[i+1:]
		}
		reached := r.model.Outgoing(focus, rel)
		if targetType == "" {
			return reached, nil
		}
		var out []*awb.Node
		for _, n := range reached {
			if r.model.Meta.IsNodeSubtype(n.Type, targetType) {
				out = append(out, n)
			}
		}
		return out, nil
	}
	return nil, trouble(t, focus, "bad selector: %s", sel)
}

func (r *run) genIf(t *xmltree.Node, focus *awb.Node) ([]*xmltree.Node, error) {
	testEl, err := requiredChild(t, docgen.DirTest, focus)
	if err != nil {
		return nil, err
	}
	thenEl, err := requiredChild(t, docgen.DirThen, focus)
	if err != nil {
		return nil, err
	}
	pass, err := r.conditionsHold(testEl, focus)
	if err != nil {
		return nil, err
	}
	if pass {
		return r.genChildren(thenEl, focus)
	}
	if elseEl := optionalChild(t, docgen.DirElse); elseEl != nil {
		return r.genChildren(elseEl, focus)
	}
	return nil, nil
}

// conditionsHold evaluates all condition children of an element (implicit
// conjunction).
func (r *run) conditionsHold(t *xmltree.Node, focus *awb.Node) (bool, error) {
	for _, c := range t.Children() {
		if c.Kind != xmltree.ElementNode {
			continue
		}
		ok, err := r.condition(c, focus)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func (r *run) condition(c *xmltree.Node, focus *awb.Node) (bool, error) {
	switch c.Name {
	case "focus-is-type":
		typ, err := requiredAttr(c, "type", focus)
		if err != nil {
			return false, err
		}
		if focus == nil {
			return false, trouble(c, focus, "<focus-is-type> with no focus")
		}
		return r.model.Meta.IsNodeSubtype(focus.Type, typ), nil
	case "has-property":
		name, err := requiredAttr(c, "name", focus)
		if err != nil {
			return false, err
		}
		if focus == nil {
			return false, trouble(c, focus, "<has-property> with no focus")
		}
		_, has := focus.Prop(name)
		return has, nil
	case "property-equals":
		name, err := requiredAttr(c, "name", focus)
		if err != nil {
			return false, err
		}
		want, err := requiredAttr(c, "value", focus)
		if err != nil {
			return false, err
		}
		if focus == nil {
			return false, trouble(c, focus, "<property-equals> with no focus")
		}
		v, has := r.propText(focus, name)
		return has && v == want, nil
	case "nonempty":
		sel, err := requiredAttr(c, "nodes", focus)
		if err != nil {
			return false, err
		}
		set, err := r.selectNodes(sel, c, focus)
		if err != nil {
			return false, err
		}
		return len(set) > 0, nil
	case "not":
		inner, err := r.conditionsHold(c, focus)
		if err != nil {
			return false, err
		}
		return !inner, nil
	}
	return false, trouble(c, focus, "unknown condition <%s>", c.Name)
}

func (r *run) genLabel(t *xmltree.Node, focus *awb.Node) ([]*xmltree.Node, error) {
	if focus == nil {
		return nil, trouble(t, focus, "<label> with no focus")
	}
	r.visited[focus.ID] = true
	return []*xmltree.Node{xmltree.NewText(focus.Label())}, nil
}

func (r *run) genProperty(t *xmltree.Node, focus *awb.Node) ([]*xmltree.Node, error) {
	name, err := requiredAttr(t, "name", focus)
	if err != nil {
		return nil, err
	}
	if focus == nil {
		return nil, trouble(t, focus, "<property> with no focus")
	}
	if r.propFault != nil {
		if err := r.propFault(focus.ID, name); err != nil {
			return nil, err
		}
	}
	v, has := r.propText(focus, name)
	if !has {
		if t.AttrOr("required", "") == "true" {
			return nil, trouble(t, focus, "node %s has no required property %q", focus.ID, name)
		}
		r.problems = append(r.problems, docgen.ProblemMissingProperty(focus.ID, name))
		return nil, nil
	}
	return []*xmltree.Node{xmltree.NewText(v)}, nil
}

// propText returns the property's text view — the string value it has in
// the exported interchange XML. HTML-kind properties lose their markup here
// (text content only), exactly what the XQuery generator sees when it
// atomizes the exported <property> element. Mirroring the export rule keeps
// the two generators byte-identical.
func (r *run) propText(focus *awb.Node, name string) (string, bool) {
	v, has := focus.Prop(name)
	if !has {
		return "", false
	}
	if r.propKind(focus, name) == awb.PropHTML && v != "" {
		if frag, err := xmltree.ParseFragment(v); err == nil {
			var b strings.Builder
			for _, f := range frag {
				b.WriteString(f.StringValue())
			}
			return b.String(), true
		}
	}
	return v, true
}

func (r *run) propKind(focus *awb.Node, name string) awb.PropKind {
	for _, d := range r.model.Meta.DeclaredProperties(focus.Type) {
		if d.Name == name {
			return d.Kind
		}
	}
	return awb.PropString
}

func (r *run) genPropertyHTML(t *xmltree.Node, focus *awb.Node) ([]*xmltree.Node, error) {
	name, err := requiredAttr(t, "name", focus)
	if err != nil {
		return nil, err
	}
	if focus == nil {
		return nil, trouble(t, focus, "<property-html> with no focus")
	}
	if r.propFault != nil {
		if err := r.propFault(focus.ID, name); err != nil {
			return nil, err
		}
	}
	v, has := focus.Prop(name)
	if !has {
		r.problems = append(r.problems, docgen.ProblemMissingProperty(focus.ID, name))
		return nil, nil
	}
	// Inline parsed markup only for declared HTML properties that parse,
	// matching the interchange export rule (and therefore what the XQuery
	// generator copies out of the exported <property> element).
	if r.propKind(focus, name) == awb.PropHTML && v != "" {
		if frag, err := xmltree.ParseFragment(v); err == nil {
			return frag, nil
		}
	}
	if v == "" {
		return nil, nil
	}
	return []*xmltree.Node{xmltree.NewText(v)}, nil
}

func (r *run) genSection(t *xmltree.Node, focus *awb.Node) ([]*xmltree.Node, error) {
	div := xmltree.NewElement("div")
	div.SetAttr("class", docgen.SectionClass)
	for _, c := range t.Children() {
		if c.Kind == xmltree.ElementNode && c.Name == docgen.DirHeading {
			h2 := xmltree.NewElement("h2")
			h2.SetAttr("class", docgen.HeadingClass)
			kids, err := r.genChildren(c, focus)
			if err != nil {
				return nil, err
			}
			for _, k := range kids {
				h2.AppendChild(k)
			}
			div.AppendChild(h2)
			continue
		}
		part, err := r.genPart(c, focus)
		if err != nil {
			return nil, err
		}
		for _, k := range part {
			div.AppendChild(k)
		}
	}
	return []*xmltree.Node{div}, nil
}

func (r *run) genReplaceMarker(t *xmltree.Node, focus *awb.Node) error {
	marker, err := requiredAttr(t, "marker", focus)
	if err != nil {
		return err
	}
	content, err := r.genChildren(t, focus)
	if err != nil {
		return err
	}
	if _, seen := r.replacements[marker]; !seen {
		r.markerOrder = append(r.markerOrder, marker)
	}
	r.replacements[marker] = content
	return nil
}
