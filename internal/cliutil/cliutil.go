// Package cliutil gives every command-line tool in the repo one shared
// error surface: a structured one-line rendering (error code + source
// position + message) and an exit-code classification that lets scripts
// tell a malformed query from a failing one from one that hit the sandbox.
//
// Exit codes:
//
//	0  success
//	1  internal or unclassified failure (I/O, contained panic, plain errors)
//	2  usage error (bad flags/arguments)
//	3  static error: the program did not compile (lex/parse/XPST*/XQST*,
//	   or a static shape-analysis rejection carrying a runtime code such
//	   as XPTY0004)
//	4  dynamic error: the program failed while running (XPDY*/FO*/XQDY*,
//	   fn:error, malformed input documents)
//	5  resource-limit error: the sandbox stopped the program (LOPS0001–0005)
package cliutil

import (
	"fmt"
	"io"
	"strings"

	"lopsided/internal/xdm"
	"lopsided/internal/xmltree"
	"lopsided/internal/xquery/interp"
	"lopsided/internal/xquery/lexer"
)

// Exit codes shared by all CLIs.
const (
	ExitOK       = 0
	ExitInternal = 1
	ExitUsage    = 2
	ExitStatic   = 3
	ExitDynamic  = 4
	ExitLimit    = 5
)

// Code extracts the error code carried by err, or "" if it is uncoded.
// Lex/parse errors carry no code and report as XPST0003 (the spec's
// generic syntax-error code).
func Code(err error) string {
	switch e := err.(type) {
	case *interp.Error:
		return e.Code
	case *xdm.Error:
		return e.Code
	case *lexer.Error:
		if e.Code != "" {
			return e.Code
		}
		return "XPST0003"
	case *xmltree.ParseError:
		return ""
	}
	return ""
}

// Classify maps err to the exit code documented in the package comment.
// Daemon errors wrapped in ServerError classify by lifecycle phase: config
// and bind failures are usage errors, runtime aborts keep the wrapped
// error's class (see server.go).
func Classify(err error) int {
	if err == nil {
		return ExitOK
	}
	switch e := err.(type) {
	case *ServerError:
		return classifyServer(e)
	case *lexer.Error:
		return ExitStatic
	case *xmltree.ParseError:
		return ExitDynamic
	case *interp.Error:
		// Static-analysis rejections carry runtime codes (XPTY0004) but
		// never ran: the program itself is bad, so they classify with the
		// other compile failures regardless of code prefix.
		if e.Static {
			return ExitStatic
		}
	}
	code := Code(err)
	switch {
	case code == "":
		return ExitInternal
	case code == interp.CodePanic:
		return ExitInternal
	case interp.IsLimitCode(code):
		return ExitLimit
	case strings.HasPrefix(code, "XPST") || strings.HasPrefix(code, "XQST"):
		return ExitStatic
	default:
		return ExitDynamic
	}
}

// Format renders err as the structured one-line diagnostic every CLI
// prints: "tool: [CODE] line:col: message". Position and code are omitted
// when the error does not carry them.
func Format(tool string, err error) string {
	if err == nil {
		return ""
	}
	if se, ok := err.(*ServerError); ok {
		return formatServer(tool, se)
	}
	var b strings.Builder
	b.WriteString(tool)
	b.WriteString(": ")
	switch e := err.(type) {
	case *interp.Error:
		fmt.Fprintf(&b, "[%s] ", e.Code)
		if e.Pos.Line > 0 {
			fmt.Fprintf(&b, "%d:%d: ", e.Pos.Line, e.Pos.Col)
		}
		b.WriteString(e.Msg)
	case *xdm.Error:
		fmt.Fprintf(&b, "[%s] ", e.Code)
		b.WriteString(e.Msg)
	case *lexer.Error:
		code := e.Code
		if code == "" {
			code = "XPST0003"
		}
		fmt.Fprintf(&b, "[%s] %d:%d: %s", code, e.Pos.Line, e.Pos.Col, e.Msg)
	case *xmltree.ParseError:
		fmt.Fprintf(&b, "xml %d:%d: %s", e.Line, e.Col, e.Msg)
	default:
		b.WriteString(err.Error())
	}
	return b.String()
}

// Report prints the structured diagnostic for err to w and returns the exit
// code the process should finish with.
func Report(w io.Writer, tool string, err error) int {
	if err == nil {
		return ExitOK
	}
	fmt.Fprintln(w, Format(tool, err))
	return Classify(err)
}
