package lexer

import "testing"

// FuzzLex asserts the lexer never panics and always terminates: every input
// tokenizes to EOF or fails with a positioned *Error.
func FuzzLex(f *testing.F) {
	seeds := []string{
		`for $b in /lib/book return $b/title`,
		`let $n-1 := 2 return $n-1`,
		`declare function local:f($x) { $x + 1 }; local:f(41)`,
		`<a b="{1+1}">{"text"}</a>`,
		`(: nested (: comment :) :) 1`,
		`"string with "" doubled"`,
		`'&lt;&amp;'`,
		`1.5e-3 idiv 2`,
		`$`, `"unterminated`, `(: unterminated`, "\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		lx := New(input)
		// Bound the walk defensively; the lexer must consume at least one
		// byte per token, so len(input)+2 iterations always reach EOF.
		for i := 0; i <= len(input)+2; i++ {
			tok, err := lx.Next()
			if err != nil {
				return
			}
			if tok.Kind == EOF {
				return
			}
		}
		t.Fatalf("lexer did not reach EOF within %d tokens", len(input)+2)
	})
}
