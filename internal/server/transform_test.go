package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postTransform drives one /transform request through the handler.
func postTransform(t testing.TB, h http.Handler, req TransformRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/transform", bytes.NewReader(body)).WithContext(context.Background())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

func TestTransformEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	src := `for $b in /collection//book
	        return (insert attribute audited { "yes" } into $b);
	        delete /collection//journal`
	rec := postTransform(t, h, TransformRequest{Update: src, Collection: "library"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp TransformResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Result, `audited="yes"`) {
		t.Fatalf("result missing inserted attribute: %q", resp.Result)
	}
	if strings.Contains(resp.Result, "<journal>") {
		t.Fatalf("result still contains deleted journal: %q", resp.Result)
	}
	if resp.Stats.UpdatesApplied != 3 {
		t.Fatalf("updates_applied = %d, want 3", resp.Stats.UpdatesApplied)
	}
	if resp.Stats.SpineNodes == 0 {
		t.Fatal("spine_nodes not reported")
	}
	if resp.PlanCache != "miss" {
		t.Fatalf("first transform plan_cache = %q, want miss", resp.PlanCache)
	}

	// The stored collection is untouched: /query still sees the journal.
	qrec := post(t, h, QueryRequest{Query: `count(/collection//journal)`, Collection: "library"})
	if qrec.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", qrec.Code, qrec.Body.String())
	}
	var qresp QueryResponse
	if err := json.Unmarshal(qrec.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}
	if qresp.Result != "1" {
		t.Fatalf("collection mutated: count(//journal) = %q after /transform, want 1", qresp.Result)
	}

	// Second identical request: per-tenant plan-cache hit.
	rec = postTransform(t, h, TransformRequest{Update: src, Collection: "library"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp = TransformResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PlanCache != "hit" {
		t.Fatalf("second transform plan_cache = %q, want hit", resp.PlanCache)
	}
}

func TestTransformCacheKeyedApartFromQuery(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	// "delete //journal" is BOTH a valid query (path child::delete then
	// //journal) and a valid update program; one tenant running it both
	// ways must get two distinct plans.
	src := `delete //journal`
	qrec := post(t, h, QueryRequest{Query: src, Collection: "library"})
	if qrec.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", qrec.Code, qrec.Body.String())
	}
	trec := postTransform(t, h, TransformRequest{Update: src, Collection: "library"})
	if trec.Code != http.StatusOK {
		t.Fatalf("transform status %d: %s", trec.Code, trec.Body.String())
	}
	var resp TransformResponse
	if err := json.Unmarshal(trec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PlanCache != "miss" {
		t.Fatalf("transform after query with identical source: plan_cache = %q, want miss (distinct plans)", resp.PlanCache)
	}
}

func TestTransformErrorTaxonomy(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	cases := []struct {
		name   string
		req    TransformRequest
		status int
		code   string
	}{
		{"missing update", TransformRequest{Collection: "library"},
			http.StatusBadRequest, CodeBadRequest},
		{"missing collection", TransformRequest{Update: `delete //x`},
			http.StatusBadRequest, CodeBadRequest},
		{"unknown collection", TransformRequest{Update: `delete //x`, Collection: "nope"},
			http.StatusNotFound, CodeNoCollection},
		{"static error", TransformRequest{Update: `insert into`, Collection: "library"},
			http.StatusBadRequest, "XPST0003"},
		{"missing target", TransformRequest{Update: `replace /collection/no-such-thing with <x/>`, Collection: "library"},
			http.StatusUnprocessableEntity, CodeNoTarget},
		{"dynamic error", TransformRequest{Update: `rename (/collection//title/text())[1] as "x"`, Collection: "library"},
			http.StatusUnprocessableEntity, "XUTY0012"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postTransform(t, h, tc.req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (%s)", rec.Code, tc.status, rec.Body.String())
			}
			body := decodeError(t, rec)
			if body.Error.Code != tc.code {
				t.Fatalf("code = %q, want %q (%s)", body.Error.Code, tc.code, body.Error.Message)
			}
		})
	}
}

func TestTransformLimitsAndStats(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	// A transform that blows the (clamped) step budget trips a LOPS code.
	rec := postTransform(t, h, TransformRequest{
		Update:     `for $i in 1 to 1000000 return delete /collection//no-such`,
		Collection: "library",
		MaxSteps:   50,
	})
	if rec.Code == http.StatusOK {
		t.Fatalf("expected limit trip, got 200: %s", rec.Body.String())
	}
	body := decodeError(t, rec)
	if !strings.HasPrefix(body.Error.Code, "LOPS") {
		t.Fatalf("code = %q, want a LOPS budget code", body.Error.Code)
	}

	// /stats reports the transform counters.
	ok := postTransform(t, h, TransformRequest{
		Update: `insert <x/> into (/collection//book)[1]`, Collection: "library"})
	if ok.Code != http.StatusOK {
		t.Fatalf("status %d: %s", ok.Code, ok.Body.String())
	}
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, httptest.NewRequest("GET", "/stats", nil))
	var stats struct {
		Transform struct {
			OK             int64 `json:"ok"`
			Errors         int64 `json:"errors"`
			UpdatesApplied int64 `json:"total_updates_applied"`
			SpineNodes     int64 `json:"total_spine_nodes"`
		} `json:"transform"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if stats.Transform.OK != 1 {
		t.Fatalf("stats transform.ok = %d, want 1", stats.Transform.OK)
	}
	if stats.Transform.Errors == 0 {
		t.Fatal("stats transform.errors = 0, want >0 (the limit trip)")
	}
	if stats.Transform.UpdatesApplied != 1 || stats.Transform.SpineNodes == 0 {
		t.Fatalf("stats transform totals = %+v, want updates_applied 1 and spine_nodes > 0", stats.Transform)
	}
}
