package xq_test

import (
	"fmt"

	"lopsided/xq"
)

func ExampleCompile() {
	doc, _ := xq.ParseXML(`<lib><book year="1983"><title>Little Languages</title></book></lib>`)
	q, err := xq.Compile(`for $b in /lib/book return string($b/title)`)
	if err != nil {
		panic(err)
	}
	out, _ := q.EvalString(nil, doc)
	fmt.Println(out)
	// Output: Little Languages
}

func ExampleCompile_flattening() {
	// Sequences flatten: there is no sequence of sequences.
	q := xq.MustCompile(`(1,(2,3,4),(),(5,((6,7))))`)
	out, _ := q.EvalString(nil, nil)
	fmt.Println(out)
	// Output: 1 2 3 4 5 6 7
}

func ExampleCompile_generalComparison() {
	// The paper's quirk #4: = is existential.
	q := xq.MustCompile(`1 = (1,2,3)`)
	out, _ := q.EvalString(nil, nil)
	fmt.Println(out)
	// Output: true
}

func ExampleWithTraceEffectful() {
	// Reproduce the Galax dead-code bug: a dummy-let trace vanishes.
	src := `let $x := 2 + 3
	        let $dummy := trace("x=", $x)
	        return $x * 10`
	buggy := xq.MustCompile(src,
		xq.WithTraceEffectful(false),
		xq.WithTracer(xq.TraceFunc(func(values []string) { fmt.Println("trace:", values) })))
	out, _ := buggy.EvalString(nil, nil)
	fmt.Println("result:", out, "| lets eliminated:", buggy.Stats.EliminatedLets)
	// Output: result: 50 | lets eliminated: 1
}

func ExampleWithVars() {
	q := xq.MustCompile(`declare variable $n external; for $i in 1 to $n return $i * $i`)
	out, _ := q.EvalString(nil, nil, xq.WithVars(map[string]xq.Sequence{
		"n": xq.Singleton(xq.Integer(4)),
	}))
	fmt.Println(out)
	// Output: 1 4 9 16
}

func ExampleCompile_tryCatch() {
	// The exception-handling extension (the paper's lesson #4).
	q := xq.MustCompile(`try { 1 div 0 } catch ($code, $msg) { concat($code, ": ", $msg) }`)
	out, _ := q.EvalString(nil, nil)
	fmt.Println(out)
	// Output: FOAR0001: division by zero
}
