package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders an expression as a compact S-expression, for diagnostics
// and optimizer tests. It is not XQuery syntax and is not parseable back;
// it exists so humans (and tests) can see what the optimizer did.
func Print(e Expr) string {
	return PrintAnnotated(e, nil)
}

// PrintAnnotated renders an expression like Print, but with a per-node
// annotation hook: after each printed expression whose annot(e) is
// non-empty, the annotation is appended as `::text`. EXPLAIN uses it to
// attach inferred static shapes to every plan node.
func PrintAnnotated(e Expr, annot func(Expr) string) string {
	p := &printer{annot: annot}
	p.expr(e)
	return p.b.String()
}

// PrintStmt renders an update statement in the same compact S-expression
// style as Print; EXPLAIN uses it to show the pending-update plan.
func PrintStmt(s UpdateStmt) string {
	return PrintStmtAnnotated(s, nil)
}

// PrintStmtAnnotated renders an update statement with the same per-node
// annotation hook as PrintAnnotated (statements themselves carry no
// annotation; their embedded expressions do).
func PrintStmtAnnotated(s UpdateStmt, annot func(Expr) string) string {
	p := &printer{annot: annot}
	p.stmt(s)
	return p.b.String()
}

// printer walks the AST writing the S-expression, appending the annotation
// hook's text after every expression node.
type printer struct {
	b     strings.Builder
	annot func(Expr) string
}

func (p *printer) expr(e Expr) {
	p.exprBare(e)
	if p.annot != nil && e != nil {
		if s := p.annot(e); s != "" {
			p.b.WriteString("::" + s)
		}
	}
}

func (p *printer) exprBare(e Expr) {
	b := &p.b
	switch n := e.(type) {
	case nil:
		b.WriteString("()")
	case *StringLit:
		b.WriteString(strconv.Quote(n.Value))
	case *IntLit:
		fmt.Fprintf(b, "%d", n.Value)
	case *DecimalLit:
		fmt.Fprintf(b, "%g", n.Value)
	case *DoubleLit:
		fmt.Fprintf(b, "%gE0", n.Value)
	case *VarRef:
		b.WriteString("$" + n.Name)
	case *ContextItem:
		b.WriteString(".")
	case *EmptySeq:
		b.WriteString("()")
	case *SequenceExpr:
		p.list("seq", n.Items...)
	case *RangeExpr:
		p.list("to", n.Lo, n.Hi)
	case *Binary:
		p.list(binOpName(n), n.L, n.R)
	case *Unary:
		op := "+u"
		if n.Minus {
			op = "-u"
		}
		p.list(op, n.Operand)
	case *IfExpr:
		p.list("if", n.Cond, n.Then, n.Else)
	case *FLWOR:
		b.WriteString("(flwor")
		for _, cl := range n.Clauses {
			switch c := cl.(type) {
			case ForClause:
				b.WriteString(" (for $" + c.Var)
				if c.PosVar != "" {
					b.WriteString(" at $" + c.PosVar)
				}
				b.WriteString(" in ")
				p.expr(c.In)
				b.WriteString(")")
			case LetClause:
				b.WriteString(" (let $" + c.Var + " := ")
				p.expr(c.Val)
				b.WriteString(")")
			}
		}
		if n.Where != nil {
			b.WriteString(" (where ")
			p.expr(n.Where)
			b.WriteString(")")
		}
		for _, spec := range n.OrderBy {
			b.WriteString(" (order ")
			p.expr(spec.Key)
			if spec.Descending {
				b.WriteString(" desc")
			}
			b.WriteString(")")
		}
		b.WriteString(" (return ")
		p.expr(n.Return)
		b.WriteString("))")
	case *Quantified:
		kw := "some"
		if n.Every {
			kw = "every"
		}
		b.WriteString("(" + kw)
		for _, v := range n.Vars {
			b.WriteString(" ($" + v.Var + " in ")
			p.expr(v.In)
			b.WriteString(")")
		}
		b.WriteString(" satisfies ")
		p.expr(n.Satisfy)
		b.WriteString(")")
	case *Typeswitch:
		b.WriteString("(typeswitch ")
		p.expr(n.Operand)
		for _, cs := range n.Cases {
			fmt.Fprintf(b, " (case %s ", cs.Type)
			p.expr(cs.Ret)
			b.WriteString(")")
		}
		b.WriteString(" (default ")
		p.expr(n.Default)
		b.WriteString("))")
	case *PathExpr:
		b.WriteString("(path")
		switch n.Root {
		case RootSlash:
			b.WriteString(" /")
		case RootSlashSlash:
			b.WriteString(" //")
		}
		for _, s := range n.Steps {
			b.WriteString(" ")
			p.step(s)
		}
		b.WriteString(")")
	case *FunctionCall:
		p.list("call "+n.Name, n.Args...)
	case *InstanceOf:
		b.WriteString("(instance-of ")
		p.expr(n.Operand)
		fmt.Fprintf(b, " %s)", n.Type)
	case *TreatAs:
		b.WriteString("(treat ")
		p.expr(n.Operand)
		fmt.Fprintf(b, " %s)", n.Type)
	case *CastAs:
		b.WriteString("(cast ")
		p.expr(n.Operand)
		fmt.Fprintf(b, " %s)", n.TypeName)
	case *CastableAs:
		b.WriteString("(castable ")
		p.expr(n.Operand)
		fmt.Fprintf(b, " %s)", n.TypeName)
	case *TryCatch:
		b.WriteString("(try ")
		p.expr(n.Try)
		b.WriteString(" catch")
		if n.CatchCodeVar != "" {
			b.WriteString(" $" + n.CatchCodeVar)
		}
		if n.CatchVar != "" {
			b.WriteString(" $" + n.CatchVar)
		}
		b.WriteString(" ")
		p.expr(n.Catch)
		b.WriteString(")")
	case *DirElem:
		fmt.Fprintf(b, "(elem %s", n.Name)
		for _, a := range n.Attrs {
			fmt.Fprintf(b, " (@%s", a.Name)
			for _, pt := range a.Parts {
				b.WriteString(" ")
				p.expr(pt)
			}
			b.WriteString(")")
		}
		for _, c := range n.Content {
			b.WriteString(" ")
			p.expr(c)
		}
		b.WriteString(")")
	case *DirComment:
		fmt.Fprintf(b, "(comment %q)", n.Data)
	case *DirPI:
		fmt.Fprintf(b, "(pi %s %q)", n.Target, n.Data)
	case *CompElem:
		b.WriteString("(celem ")
		if n.Name != "" {
			b.WriteString(n.Name)
		} else {
			p.expr(n.NameExpr)
		}
		b.WriteString(" ")
		p.expr(n.Content)
		b.WriteString(")")
	case *CompAttr:
		b.WriteString("(cattr ")
		if n.Name != "" {
			b.WriteString(n.Name)
		} else {
			p.expr(n.NameExpr)
		}
		b.WriteString(" ")
		p.expr(n.Content)
		b.WriteString(")")
	case *CompText:
		p.list("ctext", n.Content)
	case *CompComment:
		p.list("ccomment", n.Content)
	case *CompDoc:
		p.list("cdoc", n.Content)
	case *CompPI:
		p.list("cpi "+n.Target, n.Content)
	default:
		fmt.Fprintf(b, "(?%T)", e)
	}
}

func (p *printer) stmt(s UpdateStmt) {
	b := &p.b
	switch n := s.(type) {
	case *InsertStmt:
		fmt.Fprintf(b, "(insert ")
		p.expr(n.Source)
		fmt.Fprintf(b, " %s ", n.Placement)
		p.expr(n.Target)
		b.WriteString(")")
	case *DeleteStmt:
		p.list("delete", n.Target)
	case *ReplaceStmt:
		b.WriteString("(replace ")
		p.expr(n.Target)
		b.WriteString(" with ")
		p.expr(n.Source)
		b.WriteString(")")
	case *RenameStmt:
		b.WriteString("(rename ")
		p.expr(n.Target)
		b.WriteString(" as ")
		p.expr(n.Name)
		b.WriteString(")")
	case *ForStmt:
		b.WriteString("(for-each $" + n.Var + " in ")
		p.expr(n.In)
		if n.Where != nil {
			b.WriteString(" (where ")
			p.expr(n.Where)
			b.WriteString(")")
		}
		b.WriteString(" (do")
		for _, st := range n.Body {
			b.WriteString(" ")
			p.stmt(st)
		}
		b.WriteString("))")
	case *BlockStmt:
		b.WriteString("(block")
		for _, st := range n.Stmts {
			b.WriteString(" ")
			p.stmt(st)
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "(?%T)", s)
	}
}

func (p *printer) list(head string, items ...Expr) {
	p.b.WriteString("(" + head)
	for _, it := range items {
		p.b.WriteString(" ")
		p.expr(it)
	}
	p.b.WriteString(")")
}

func (p *printer) step(s Step) {
	b := &p.b
	if s.Primary != nil {
		b.WriteString("(filter ")
		p.expr(s.Primary)
	} else {
		fmt.Fprintf(b, "(%s::", s.Axis)
		if s.Test.Kind != nil {
			b.WriteString(s.Test.Kind.String())
		} else {
			b.WriteString(s.Test.Name)
		}
	}
	for _, pr := range s.Preds {
		b.WriteString(" [")
		p.expr(pr)
		b.WriteString("]")
	}
	b.WriteString(")")
}

func binOpName(n *Binary) string {
	switch n.Kind {
	case OpOr:
		return "or"
	case OpAnd:
		return "and"
	case OpGeneralComp:
		return "gc:" + cmpSym(n)
	case OpValueComp:
		return "vc:" + n.Cmp.String()
	case OpNodeIs:
		return "is"
	case OpNodeBefore:
		return "<<"
	case OpNodeAfter:
		return ">>"
	case OpArith:
		return n.Arith.String()
	case OpUnion:
		return "union"
	case OpIntersect:
		return "intersect"
	case OpExcept:
		return "except"
	}
	return "?"
}

func cmpSym(n *Binary) string {
	syms := []string{"=", "!=", "<", "<=", ">", ">="}
	if int(n.Cmp) < len(syms) {
		return syms[n.Cmp]
	}
	return "?"
}
