package obs

// Process-wide metrics: monotonic counters and latency histograms for the
// engine as a whole, complementing the per-evaluation EvalStats. The
// registry is cheap enough to update unconditionally (one atomic add per
// counter) and is exported two ways: MetricsSnapshot() for programmatic
// consumers and expvar (under the key "lopsided_engine") for anything that
// already scrapes /debug/vars.

import (
	"expvar"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations with ceil(log2(us)) == i, i.e. bucket upper bounds of
// 1us, 2us, 4us … ~8.6s; slower observations land in the overflow bucket.
const histBuckets = 24

// Histogram is a fixed-bucket power-of-two latency histogram, safe for
// concurrent observation.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	idx := bits.Len64(us) // 0 for <1us, 1 for 1us, … monotone in d
	if idx > histBuckets {
		idx = histBuckets
	}
	h.counts[idx].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// HistogramBucket is one bucket of a histogram snapshot: the inclusive
// upper bound and the count of observations at or under it that are above
// the previous bucket's bound.
type HistogramBucket struct {
	LE    time.Duration // upper bound; 0 on the overflow bucket
	Count int64
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets []HistogramBucket // only buckets with nonzero counts
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot copies the histogram's current state. It is safe to call while
// observations continue; the result is approximately consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := time.Duration(0)
		if i < histBuckets {
			le = time.Microsecond << uint(i) / 2
			if i == 0 {
				le = time.Microsecond
			}
		}
		out.Buckets = append(out.Buckets, HistogramBucket{LE: le, Count: n})
	}
	return out
}

// Registry is the process-wide metrics surface. All fields are safe for
// concurrent update.
type Registry struct {
	// Compilation.
	Compiles       atomic.Int64 // successful or failed parse→compile runs
	CompileErrors  atomic.Int64
	CompileLatency Histogram

	// Plan cache.
	PlanCacheHits      atomic.Int64
	PlanCacheMisses    atomic.Int64
	PlanCacheEvictions atomic.Int64

	// Evaluation.
	Evals       atomic.Int64
	EvalErrors  atomic.Int64 // all failed evaluations, limit hits included
	LimitHits   atomic.Int64 // evaluations stopped by a LOPS0001-0005 budget
	EvalLatency Histogram
	// ShapeChecksElided accumulates runtime checks skipped across all
	// evaluations because static shape inference proved them redundant.
	ShapeChecksElided atomic.Int64

	// Tracing.
	TraceEvents atomic.Int64 // live fn:trace hits delivered to hosts
}

// SharingStats reports the copy-on-write tree layer's process-wide traffic:
// lazy clones handed out, one-level materializations that broke sharing,
// nodes whose physical copy was deferred at clone time, and scratch-buffer
// pool hits/misses. The counters live in the tree package (which this
// package must not import); the engine registers a probe so snapshots can
// include them.
type SharingStats struct {
	CowClones        int64
	CowBreaks        int64
	CowDeferredNodes int64
	PoolHits         int64
	PoolMisses       int64
}

// sharingProbe is read at snapshot time; nil until an engine package
// registers one via SetSharingProbe.
var sharingProbe atomic.Pointer[func() SharingStats]

// SetSharingProbe registers the function Snapshot uses to fill the
// copy-on-write and pool counters. The tree package owns those counters and
// cannot import obs, so the public engine package wires the two together.
// Later registrations replace earlier ones.
func SetSharingProbe(fn func() SharingStats) {
	sharingProbe.Store(&fn)
}

// IndexStats reports the access-path layer's process-wide traffic: index
// section builds and the wall time they took, probes served from an index,
// child steps proven empty by the path synopsis, and probes that fell back
// to a tree walk. The counters live in the index package; the engine
// registers a probe, exactly like the sharing counters.
type IndexStats struct {
	Builds     int64
	BuildNanos int64
	Hits       int64
	Prunes     int64
	Fallbacks  int64
}

// indexProbe is read at snapshot time; nil until an engine package
// registers one via SetIndexProbe.
var indexProbe atomic.Pointer[func() IndexStats]

// SetIndexProbe registers the function Snapshot uses to fill the
// structural/value index counters. Later registrations replace earlier
// ones.
func SetIndexProbe(fn func() IndexStats) {
	indexProbe.Store(&fn)
}

// StreamStats reports the streaming-parse layer's process-wide traffic:
// full reader parses, projection-pruned parses, input bytes scanned, and
// the projected parses' element retain/prune decisions. The counters live
// in the tree package; the engine registers a probe, exactly like the
// sharing counters.
type StreamStats struct {
	ReaderParses     int64
	ProjectedParses  int64
	BytesScanned     int64
	ElementsRetained int64
	ElementsPruned   int64
}

// streamProbe is read at snapshot time; nil until an engine package
// registers one via SetStreamProbe.
var streamProbe atomic.Pointer[func() StreamStats]

// SetStreamProbe registers the function Snapshot uses to fill the
// streaming-parse counters. Later registrations replace earlier ones.
func SetStreamProbe(fn func() StreamStats) {
	streamProbe.Store(&fn)
}

// Snapshot is a point-in-time copy of a Registry, the MetricsSnapshot()
// result type.
type Snapshot struct {
	Compiles, CompileErrors                            int64
	PlanCacheHits, PlanCacheMisses, PlanCacheEvictions int64
	Evals, EvalErrors, LimitHits                       int64
	TraceEvents                                        int64
	ShapeChecksElided                                  int64
	// Sharing holds the copy-on-write/pool counters from the registered
	// probe (zero when no probe is registered).
	Sharing SharingStats
	// Index holds the structural/value index counters from the registered
	// probe (zero when no probe is registered).
	Index IndexStats
	// Stream holds the streaming-parse counters from the registered probe
	// (zero when no probe is registered).
	Stream                      StreamStats
	CompileLatency, EvalLatency HistogramSnapshot
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	var sharing SharingStats
	if fn := sharingProbe.Load(); fn != nil {
		sharing = (*fn)()
	}
	var index IndexStats
	if fn := indexProbe.Load(); fn != nil {
		index = (*fn)()
	}
	var stream StreamStats
	if fn := streamProbe.Load(); fn != nil {
		stream = (*fn)()
	}
	return Snapshot{
		Sharing:            sharing,
		Index:              index,
		Stream:             stream,
		Compiles:           r.Compiles.Load(),
		CompileErrors:      r.CompileErrors.Load(),
		PlanCacheHits:      r.PlanCacheHits.Load(),
		PlanCacheMisses:    r.PlanCacheMisses.Load(),
		PlanCacheEvictions: r.PlanCacheEvictions.Load(),
		Evals:              r.Evals.Load(),
		EvalErrors:         r.EvalErrors.Load(),
		LimitHits:          r.LimitHits.Load(),
		TraceEvents:        r.TraceEvents.Load(),
		ShapeChecksElided:  r.ShapeChecksElided.Load(),
		CompileLatency:     r.CompileLatency.Snapshot(),
		EvalLatency:        r.EvalLatency.Snapshot(),
	}
}

// std is the default registry every engine entry point reports into.
var std = &Registry{}

// Default returns the process-wide registry.
func Default() *Registry { return std }

// MetricsSnapshot copies the process-wide registry: the programmatic twin
// of the expvar export.
func MetricsSnapshot() Snapshot { return std.Snapshot() }

var publishOnce sync.Once

// PublishExpvar exposes the default registry under the expvar key
// "lopsided_engine" (visible at /debug/vars on hosts serving the default
// mux). Idempotent; the public xq package calls it on first use.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("lopsided_engine", expvar.Func(func() any {
			return MetricsSnapshot()
		}))
	})
}
