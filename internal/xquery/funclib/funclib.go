// Package funclib implements the built-in function library of the XQuery
// subset: the fn: functions the paper's document generator leaned on, the
// xs: constructor functions, and the two diagnostic functions whose
// behavior the paper turns on — fn:error (the original "print and kill the
// program" debugging tool) and fn:trace (variadic, returning its *last*
// argument, as Galax implemented it after early users complained).
package funclib

import (
	"math"
	"strings"
	"sync"

	"lopsided/internal/xdm"
)

// Context is what built-in functions may ask of the evaluator. The
// interpreter implements it; tests may provide fakes.
type Context interface {
	// FocusItem returns the context item, or an XPDY0002 error if absent.
	FocusItem() (xdm.Item, error)
	// FocusPos returns position() for the current focus.
	FocusPos() (int, error)
	// FocusSize returns last() for the current focus.
	FocusSize() (int, error)
	// Trace reports a fn:trace call to the host (already-serialized values).
	Trace(values []string)
	// Doc resolves a document URI to its document node sequence.
	Doc(uri string) (xdm.Sequence, error)
}

// Budgeter is optionally implemented by Contexts that enforce evaluation
// resource limits (the interpreter's evalCtx does). Built-ins with
// data-dependent loops or output — distinct-values, string-join, concat —
// charge the shared budget through it so a query cannot dodge its step or
// output-byte limits by hiding work inside a function call. Contexts that
// do not implement Budgeter (test fakes) are simply unlimited.
type Budgeter interface {
	// ChargeSteps charges n evaluation steps; a non-nil return is the
	// budget-exhausted error to propagate.
	ChargeSteps(n int) error
	// ChargeBytes charges n bytes of constructed output.
	ChargeBytes(n int) error
}

// chargeSteps charges steps if ctx keeps a budget.
func chargeSteps(ctx Context, n int) error {
	if b, ok := ctx.(Budgeter); ok {
		return b.ChargeSteps(n)
	}
	return nil
}

// chargeBytes charges output bytes if ctx keeps a budget.
func chargeBytes(ctx Context, n int) error {
	if b, ok := ctx.(Budgeter); ok {
		return b.ChargeBytes(n)
	}
	return nil
}

// Func is one registered built-in.
type Func struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 = variadic
	Call    func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error)
}

var registry = map[string]*Func{}

func register(name string, minArgs, maxArgs int, call func(Context, []xdm.Sequence) (xdm.Sequence, error)) {
	registry[name] = &Func{Name: name, MinArgs: minArgs, MaxArgs: maxArgs, Call: call}
}

// ctorFuncs lazily caches the xs:/xdt: constructor *Func values by type
// name, so repeated lookups of the same constructor return one shared
// instance instead of allocating a fresh closure per call site (or, before
// dispatch was pre-bound, per call).
var ctorFuncs sync.Map // typeName string -> *Func

// Lookup finds a built-in by name and arity. The fn: prefix is optional, as
// it is the default function namespace. xs:TYPE constructor functions
// resolve for any castable atomic type. The returned *Func is shared and
// immutable: callers may hold it and Call it concurrently.
func Lookup(name string, arity int) (*Func, bool) {
	bare := strings.TrimPrefix(name, "fn:")
	f, ok := registry[bare]
	if ok {
		if arity < f.MinArgs || (f.MaxArgs >= 0 && arity > f.MaxArgs) {
			return nil, false
		}
		return f, true
	}
	// xs: constructor functions: xs:integer("42") etc.
	if arity == 1 && (strings.HasPrefix(name, "xs:") || strings.HasPrefix(name, "xdt:")) {
		if cached, ok := ctorFuncs.Load(name); ok {
			return cached.(*Func), true
		}
		typeName := name
		cf := &Func{Name: name, MinArgs: 1, MaxArgs: 1,
			Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
				it, err := xdm.Atomize(args[0]).AtMostOne()
				if err != nil {
					return nil, err
				}
				if it == nil {
					return xdm.Empty, nil
				}
				out, err := xdm.CastTo(it, typeName)
				if err != nil {
					return nil, err
				}
				return xdm.Singleton(out), nil
			}}
		actual, _ := ctorFuncs.LoadOrStore(name, cf)
		return actual.(*Func), true
	}
	return nil, false
}

// Names returns the registered built-in names (for diagnostics and docs).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

// ---- helpers ----

// stringArg extracts an optional-string argument: empty sequence yields "".
func stringArg(s xdm.Sequence) (string, error) {
	it, err := xdm.Atomize(s).AtMostOne()
	if err != nil {
		return "", err
	}
	if it == nil {
		return "", nil
	}
	return it.StringValue(), nil
}

// numArg extracts a required numeric argument as float64.
func numArg(s xdm.Sequence) (float64, bool, error) {
	it, err := xdm.Atomize(s).AtMostOne()
	if err != nil {
		return 0, false, err
	}
	if it == nil {
		return 0, false, nil
	}
	return xdm.NumberOf(it), true, nil
}

// intArg extracts a required integer argument.
func intArg(s xdm.Sequence) (int64, error) {
	it, err := xdm.Atomize(s).One()
	if err != nil {
		return 0, err
	}
	cast, err := xdm.CastTo(it, "xs:integer")
	if err != nil {
		return 0, err
	}
	return int64(cast.(xdm.Integer)), nil
}

func singleton(it xdm.Item) (xdm.Sequence, error) { return xdm.Singleton(it), nil }

func boolSeq(b bool) xdm.Sequence { return xdm.Singleton(xdm.Boolean(b)) }

// ErrorValue is the Go error raised by fn:error; the interpreter surfaces
// it with position information. It carries the user's code and description,
// the only mechanism the paper's team had for aborting with a message.
type ErrorValue struct {
	Code string
	Desc string
}

// Error implements the error interface.
func (e *ErrorValue) Error() string {
	if e.Desc == "" {
		return e.Code
	}
	return e.Code + ": " + e.Desc
}

func init() {
	registerSequenceFuncs()
	registerStringFuncs()
	registerNumericFuncs()
	registerBooleanFuncs()
	registerNodeFuncs()
	registerDiagnosticFuncs()
}

func registerDiagnosticFuncs() {
	// fn:error() / fn:error($desc) / fn:error($code, $desc).
	// In the paper's era this "prints $msg on the console and kills the
	// program" — the team's primary debugging tool before trace existed.
	register("error", 0, 2, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		ev := &ErrorValue{Code: "FOER0000"}
		switch len(args) {
		case 1:
			ev.Desc = args[0].StringJoin()
		case 2:
			ev.Code = args[0].StringJoin()
			ev.Desc = args[1].StringJoin()
		}
		return nil, ev
	})
	// fn:trace(args...) prints its arguments and returns the value of the
	// LAST one — the Galax behavior the paper describes ("a trace function
	// which prints its arguments and returns the value of the last one").
	register("trace", 1, -1, func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
		vals := make([]string, len(args))
		for i, a := range args {
			vals[i] = a.StringJoin()
		}
		ctx.Trace(vals)
		return args[len(args)-1], nil
	})
	register("doc", 1, 1, func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
		uri, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		if uri == "" {
			return xdm.Empty, nil
		}
		return ctx.Doc(uri)
	})
}

func registerBooleanFuncs() {
	register("true", 0, 0, func(_ Context, _ []xdm.Sequence) (xdm.Sequence, error) {
		return boolSeq(true), nil
	})
	register("false", 0, 0, func(_ Context, _ []xdm.Sequence) (xdm.Sequence, error) {
		return boolSeq(false), nil
	})
	register("not", 1, 1, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		b, err := xdm.EffectiveBool(args[0])
		if err != nil {
			return nil, err
		}
		return boolSeq(!b), nil
	})
	register("boolean", 1, 1, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		b, err := xdm.EffectiveBool(args[0])
		if err != nil {
			return nil, err
		}
		return boolSeq(b), nil
	})
}

func registerNumericFuncs() {
	register("number", 0, 1, func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
		var it xdm.Item
		if len(args) == 0 {
			var err error
			it, err = ctx.FocusItem()
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			it, err = xdm.Atomize(args[0]).AtMostOne()
			if err != nil {
				return nil, err
			}
		}
		if it == nil {
			return singleton(xdm.Double(math.NaN()))
		}
		return singleton(xdm.Double(xdm.NumberOf(it)))
	})
	unary := func(name string, f func(float64) float64) {
		register(name, 1, 1, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			it, err := xdm.Atomize(args[0]).AtMostOne()
			if err != nil {
				return nil, err
			}
			if it == nil {
				return xdm.Empty, nil
			}
			if i, ok := it.(xdm.Integer); ok {
				return singleton(xdm.Integer(int64(f(float64(i)))))
			}
			v := f(xdm.NumberOf(it))
			if _, ok := it.(xdm.Double); ok {
				return singleton(xdm.Double(v))
			}
			return singleton(xdm.Decimal(v))
		})
	}
	unary("abs", math.Abs)
	unary("ceiling", math.Ceil)
	unary("floor", math.Floor)
	unary("round", func(f float64) float64 {
		// XPath round: round half toward positive infinity.
		return math.Floor(f + 0.5)
	})
	unary("round-half-to-even", math.RoundToEven)
}
