package xqgen

import (
	"strings"
	"testing"

	"lopsided/internal/awb"
	"lopsided/internal/textkit"
	"lopsided/internal/workload"
	"lopsided/xq"
)

func TestPhasesCompile(t *testing.T) {
	for i, src := range PhaseSources() {
		if _, err := xq.Compile(src); err != nil {
			t.Fatalf("phase %d does not compile: %v", i+1, err)
		}
	}
}

func TestPhaseSourcesAreSubstantial(t *testing.T) {
	// The paper's generator was "a few thousand lines" of XQuery; the
	// reproduction's template vocabulary is smaller, but the program must
	// still be a real XQuery program, not a stub.
	total := 0
	for _, src := range PhaseSources() {
		total += textkit.XQueryCount(src)
	}
	if total < 250 {
		t.Fatalf("embedded XQuery program suspiciously small: %d lines", total)
	}
}

func TestGenerateBasics(t *testing.T) {
	m := awb.NewModel(workload.ITMetamodel())
	u := m.NewNode("User")
	u.SetProp("label", "only")
	res, err := New().Generate(m, workload.ParseTemplate(
		`<template><ul><for nodes="all.User"><li><label/></li></for></ul></template>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DocString(); got != `<ul><li>only</li></ul>` {
		t.Fatalf("got %s", got)
	}
}

func TestGenErrorSurfaced(t *testing.T) {
	m := awb.NewModel(workload.ITMetamodel())
	m.NewNode("Document")
	_, err := New().Generate(m, workload.ParseTemplate(
		`<template><for nodes="all.Document"><property name="version" required="true"/></for></template>`))
	ge, ok := err.(*GenError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if ge.Location != "property" || ge.FocusID == "" {
		t.Fatalf("GenError = %+v", ge)
	}
	if !strings.Contains(ge.Error(), "property") {
		t.Fatal("Error() formatting")
	}
}

func TestWrongTemplateRoot(t *testing.T) {
	m := awb.NewModel(workload.ITMetamodel())
	_, err := New().Generate(m, workload.ParseTemplate(`<not-a-template/>`))
	if err == nil || !strings.Contains(err.Error(), "template") {
		t.Fatalf("want template-root error, got %v", err)
	}
}

func TestInternalDataFullyStripped(t *testing.T) {
	m := workload.BuildITModel(workload.Config{Seed: 1, Docs: 5, MissingVersionEvery: 2})
	res, err := New().Generate(m, workload.ParseTemplate(workload.SystemContextTemplate))
	if err != nil {
		t.Fatal(err)
	}
	doc := res.DocString()
	for _, leak := range []string{"INTERNAL-DATA", "VISITED", "REPLACEMENT", "<PROBLEM"} {
		if strings.Contains(doc, leak) {
			t.Fatalf("internal plumbing leaked into output: %s", leak)
		}
	}
	if len(res.Problems) == 0 {
		t.Fatal("expected missing-version problems")
	}
}

func TestGeneratorReusableAcrossModels(t *testing.T) {
	g := New()
	tpl := workload.ParseTemplate(workload.QuickTemplate)
	for seed := int64(1); seed <= 3; seed++ {
		m := workload.BuildITModel(workload.Config{Seed: seed})
		if _, err := g.Generate(m, tpl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGalaxModeStillCorrect(t *testing.T) {
	// Running the generator with the buggy optimizer configuration must
	// not change output: the program insinuates no dummy-let traces.
	m := workload.BuildITModel(workload.Config{Seed: 4})
	tpl := workload.ParseTemplate(workload.QuickTemplate)
	normal, err := New().Generate(m, tpl)
	if err != nil {
		t.Fatal(err)
	}
	galax, err := New(xq.WithTraceEffectful(false)).Generate(m, tpl)
	if err != nil {
		t.Fatal(err)
	}
	if normal.DocString() != galax.DocString() {
		t.Fatal("optimizer configuration changed generator output")
	}
	// And with the optimizer fully off.
	o0, err := New(xq.WithOptLevel(xq.O0)).Generate(m, tpl)
	if err != nil {
		t.Fatal(err)
	}
	if normal.DocString() != o0.DocString() {
		t.Fatal("O0 changed generator output")
	}
}

func TestXSLTSplitterEquivalent(t *testing.T) {
	// The paper's actual final step — "a little XSLT program could split
	// them apart" — must agree exactly with the host-language split.
	m := workload.BuildITModel(workload.Config{Seed: 6, Docs: 5, MissingVersionEvery: 2})
	tpl := workload.ParseTemplate(workload.SystemContextTemplate)

	goSplit := New()
	res1, err := goSplit.Generate(m, tpl)
	if err != nil {
		t.Fatal(err)
	}
	xsltSplit := New()
	xsltSplit.UseXSLTSplitter(true)
	res2, err := xsltSplit.Generate(m, tpl)
	if err != nil {
		t.Fatal(err)
	}
	if res1.DocString() != res2.DocString() {
		t.Fatal("XSLT splitter changed the document stream")
	}
	if len(res1.Problems) != len(res2.Problems) {
		t.Fatalf("problem streams differ: %v vs %v", res1.Problems, res2.Problems)
	}
	for i := range res1.Problems {
		if res1.Problems[i] != res2.Problems[i] {
			t.Fatalf("problem %d differs: %q vs %q", i, res1.Problems[i], res2.Problems[i])
		}
	}
}
