package experiments

import (
	"fmt"

	"lopsided/internal/awb"
	"lopsided/internal/docgen"
	"lopsided/internal/docgen/native"
	"lopsided/internal/docgen/xqgen"
	"lopsided/internal/textkit"
	"lopsided/internal/workload"
	"lopsided/internal/xmltree"
)

func init() {
	register("E3", "The row/col table, both ways", runE3)
	register("E5", "Multi-phase (functional) vs mutable generation", runE5)
	register("E10", "Rewrite parity: both generators, identical output", runE10)
	register("F1", "Document-generation scaling series", runF1)
	register("F2", "Batch generation throughput (GenerateBatch workers)", runF2)
}

// matrixModel builds the 2x2 example of the paper's table section.
func matrixModel() *awb.Model {
	m := awb.NewModel(workload.ITMetamodel())
	mk := func(typ, label string) *awb.Node {
		n := m.NewNode(typ)
		n.SetProp("label", label)
		return n
	}
	r1 := mk("User", "row title 1")
	r2 := mk("User", "row title 2")
	c1 := mk("System", "col title 1")
	c2 := mk("System", "col title 2")
	m.Connect("uses", r1, c1)
	m.Connect("uses", r1, c2)
	m.Connect("uses", r2, c1)
	m.Connect("uses", r2, c2)
	return m
}

func runE3() (Report, error) {
	model := matrixModel()
	tpl := workload.ParseTemplate(
		`<template><matrix rows="all.User" cols="all.System" relation="uses" corner="row\col" mark="val"/></template>`)
	resN, errN := native.New().Generate(model, tpl)
	if errN != nil {
		return Report{}, fmt.Errorf("native matrix generation: %w", errN)
	}
	resX, errX := xqgen.New().Generate(model, tpl)
	if errX != nil {
		return Report{}, fmt.Errorf("xquery matrix generation: %w", errX)
	}
	pretty := xmltree.Serialize(resN.Document, xmltree.SerializeOptions{Indent: "  ", OmitDecl: true})
	same := resN.DocString() == resX.DocString()
	return Report{
		ID:    "E3",
		Title: "The row/col table (T2)",
		Paper: `the XQuery version was "a large and somewhat intricate segment of code" built all at once; the Java version built a skeleton and filled corner, row titles, column titles and values "each in a separate loop"`,
		Text: pretty + fmt.Sprintf(
			"\n\nnative (skeleton + 2-D array fill) == xquery (all-at-once): %v\n", same),
		Verdict: "both construction styles produce the paper's table shape byte-identically; the imperative skeleton-and-fill never mingles row titles with cell values",
	}, nil
}

// parityCorpus is the model/template grid used by E10 and the benches.
func parityCorpus() (map[string]*awb.Model, map[string]*xmltree.Node) {
	models := map[string]*awb.Model{
		"small":  workload.BuildITModel(workload.Config{Seed: 1}),
		"medium": workload.BuildITModel(workload.Config{Seed: 2, Users: 25, Systems: 6, Servers: 8, Programs: 12, Docs: 9}),
		"glass":  workload.BuildGlassModel(7),
	}
	templates := map[string]*xmltree.Node{
		"quick":   workload.ParseTemplate(workload.QuickTemplate),
		"context": workload.ParseTemplate(workload.SystemContextTemplate),
		"glass":   workload.ParseTemplate(workload.GlassCatalogTemplate),
	}
	return models, templates
}

func runE10() (Report, error) {
	models, templates := parityCorpus()
	nat, xqg := native.New(), xqgen.New()
	var rows [][]string
	allMatch := true
	for mname, model := range models {
		for tname, tpl := range templates {
			a, errA := nat.Generate(model, tpl)
			b, errB := xqg.Generate(model, tpl)
			status := "both error"
			if errA == nil && errB == nil {
				if a.DocString() == b.DocString() && fmt.Sprint(a.Problems) == fmt.Sprint(b.Problems) {
					status = fmt.Sprintf("identical (%d bytes, %d problems)", len(a.DocString()), len(a.Problems))
				} else {
					status = "MISMATCH"
					allMatch = false
				}
			} else if (errA == nil) != (errB == nil) {
				status = "error disagreement"
				allMatch = false
			}
			rows = append(rows, []string{mname, tname, status})
		}
	}
	verdict := "the rewrite fully reproduces the XQuery generator's behavior — every model/template pair byte-identical"
	if !allMatch {
		verdict = "PARITY FAILURE — see rows above"
	}
	return Report{
		ID:      "E10",
		Title:   "Rewrite parity (C3, power half)",
		Paper:   `"In a few weeks we had pretty much reproduced the power of the XQuery code."`,
		Text:    textkit.Table([]string{"model", "template", "result"}, rows),
		Verdict: verdict,
	}, nil
}

func docgenTimes(model *awb.Model, tpl *xmltree.Node, runs int) (natT, xqT, ratio string, err error) {
	nat, xqg := native.New(), xqgen.New()
	// Pre-flight both generators once — this validates the model/template
	// pair (and warms the xqgen phase compilation) so the timed closures
	// below only ever re-run work that already succeeded. Any residual
	// error inside the timed loops is captured rather than panicking.
	if _, err := nat.Generate(model, tpl); err != nil {
		return "", "", "", fmt.Errorf("native generation: %w", err)
	}
	if _, err := xqg.Generate(model, tpl); err != nil {
		return "", "", "", fmt.Errorf("xquery generation: %w", err)
	}
	var timedErr error
	note := func(err error) {
		if err != nil && timedErr == nil {
			timedErr = err
		}
	}
	n := medianTime(runs, func() {
		_, err := nat.Generate(model, tpl)
		note(err)
	})
	x := medianTime(runs, func() {
		_, err := xqg.Generate(model, tpl)
		note(err)
	})
	if timedErr != nil {
		return "", "", "", fmt.Errorf("generation failed during timing: %w", timedErr)
	}
	return fmtDur(n), fmtDur(x), textkit.Ratio(float64(x), float64(n)), nil
}

func runE5() (Report, error) {
	sizes := []struct {
		name string
		cfg  workload.Config
	}{
		{"tiny (8 users)", workload.Config{Seed: 1}},
		{"small (25 users)", workload.Config{Seed: 2, Users: 25, Systems: 6, Servers: 8, Programs: 12, Docs: 9}},
		{"medium (60 users)", workload.Config{Seed: 3, Users: 60, Systems: 10, Servers: 12, Programs: 20, Docs: 15}},
	}
	tpl := workload.ParseTemplate(workload.SystemContextTemplate)
	var rows [][]string
	for _, s := range sizes {
		model := workload.BuildITModel(s.cfg)
		n, x, r, err := docgenTimes(model, tpl, 5)
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", s.name, err)
		}
		rows = append(rows, []string{s.name, n, x, r})
	}
	return Report{
		ID:    "E5",
		Title: "Multi-phase vs mutable generation (C2)",
		Paper: `the phase pipeline "was fairly inefficient, requiring multiple copies of the entire output (complete with internal notes that weren't going to get into the final output)"; the Java mutation pass was "remarkable in its routineness"`,
		Text: textkit.Table(
			[]string{"model", "native (mutable, 1 pass)", "xquery (5 phases, full copies)", "xquery/native"},
			rows),
		Verdict: "the functional pipeline pays a penalty of two-to-three orders of magnitude that grows with document size — the paper's \"fairly inefficient\" understates it once an interpreter sits underneath; correctness is unaffected (see E10)",
	}, nil
}

func runF1() (Report, error) {
	userCounts := []int{5, 20, 80, 200}
	var rows [][]string
	for _, u := range userCounts {
		model := workload.BuildITModel(workload.Config{
			Seed: int64(u), Users: u, Systems: 5, Servers: 6, Programs: 8, Docs: 6})
		tpl := workload.ScalingTemplate(6)
		runs := 5
		if u >= 80 {
			runs = 3
		}
		n, x, r, err := docgenTimes(model, tpl, runs)
		if err != nil {
			return Report{}, fmt.Errorf("%d users: %w", u, err)
		}
		rows = append(rows, []string{fmt.Sprintf("%d", u), n, x, r})
	}
	return Report{
		ID:    "F1",
		Title: "Scaling series: generation time vs model size",
		Paper: "(derived) the functional generator's full-document copies and O(n^2) scans should widen the gap as models grow",
		Text: textkit.Table(
			[]string{"users", "native", "xquery", "xquery/native"},
			rows),
		Verdict: "native stays near-linear; the XQuery pipeline's gap widens with size — the shape that doomed it for the always-visible UI",
	}, nil
}

func runF2() (Report, error) {
	const batchSize = 16
	model := workload.BuildITModel(workload.Config{Seed: 2, Users: 25, Systems: 6, Servers: 8, Programs: 12, Docs: 9})
	tpl := workload.ParseTemplate(workload.SystemContextTemplate)
	jobs := make([]docgen.BatchJob, batchSize)
	for i := range jobs {
		jobs[i] = docgen.BatchJob{Model: model, Template: tpl}
	}
	engines := []struct {
		name string
		gen  docgen.Generator
	}{
		{"native", native.New()},
		{"xquery", xqgen.New()},
	}
	var rows [][]string
	for _, e := range engines {
		// Warm the plan cache and validate the pair outside the timed runs.
		if _, err := e.gen.Generate(model, tpl); err != nil {
			return Report{}, fmt.Errorf("%s batch pre-flight: %w", e.name, err)
		}
		for _, workers := range []int{1, 4, 8} {
			var batchErr error
			d := medianTime(3, func() {
				for _, r := range docgen.GenerateBatch(e.gen, jobs, workers) {
					if r.Err != nil && batchErr == nil {
						batchErr = r.Err
					}
				}
			})
			if batchErr != nil {
				return Report{}, fmt.Errorf("%s batch at %d workers: %w", e.name, workers, batchErr)
			}
			docsPerSec := float64(batchSize) / d.Seconds()
			rows = append(rows, []string{
				e.name, fmt.Sprintf("%d", workers), fmtDur(d), fmt.Sprintf("%.1f", docsPerSec)})
		}
	}
	return Report{
		ID:    "F2",
		Title: "Batch throughput: GenerateBatch at 1/4/8 workers",
		Paper: "(derived) the paper's generator ran one document at a time; a batch front-end over shared, frozen inputs is what the copy-on-write tree layer buys",
		Text: textkit.Table(
			[]string{"engine", "workers", "batch wall (16 docs)", "docs/sec"},
			rows),
		Verdict: "all workers share one model, one template, and the cached plans; scaling past 1 worker tracks available cores (flat on a single-core host), while the per-document cost already reflects lazy cloning",
	}, nil
}

// Silence unused-import guard for docgen (the interface is exercised via
// both concrete generators).
var _ docgen.Generator = (*native.Generator)(nil)
var _ docgen.Generator = (*xqgen.Generator)(nil)
