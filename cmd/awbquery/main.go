// Command awbquery evaluates an AWB calculus query against a model, with
// either the native evaluator or the compile-to-XQuery path.
//
//	awbquery -demo -e '<query><start type="User"/><sort by="label"/></query>'
//	awbquery -model m.xml -query q.xml -engine=xquery -print-xquery
//	awbquery -demo -engine=xquery -timeout 5s -max-steps 5000000 -query q.xml
//	awbquery -demo -engine=xquery -explain -query q.xml
//	awbquery -demo -engine=xquery -stats -query q.xml
//
// Errors print with their code and position; exit codes follow the
// cliutil taxonomy (2 usage, 3 static, 4 dynamic, 5 resource limit).
package main

import (
	"flag"
	"fmt"
	"os"

	"lopsided/internal/awb"
	"lopsided/internal/awb/calculus"
	"lopsided/internal/cliutil"
	"lopsided/internal/workload"
	"lopsided/xq"
)

func main() {
	modelFile := flag.String("model", "", "AWB model interchange XML")
	queryFile := flag.String("query", "", "calculus query XML file")
	inline := flag.String("e", "", "inline calculus query XML")
	engine := flag.String("engine", "native", "evaluator: native | xquery")
	printXQ := flag.Bool("print-xquery", false, "print the compiled XQuery source and exit")
	demo := flag.Bool("demo", false, "use the built-in demo model")
	ef := cliutil.AddEngineFlags(flag.CommandLine)
	flag.Parse()

	var model *awb.Model
	if *demo {
		model = workload.BuildITModel(workload.Config{Seed: 42, Users: 10, Systems: 4})
	} else {
		if *modelFile == "" {
			fmt.Fprintln(os.Stderr, "usage: awbquery (-demo | -model m.xml) (-e '<query>…' | -query q.xml) [-engine native|xquery]")
			os.Exit(2)
		}
		f, err := os.Open(*modelFile)
		if err != nil {
			fatal(err)
		}
		model, err = awb.ImportReader(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	src := *inline
	if src == "" {
		if *queryFile == "" {
			fmt.Fprintln(os.Stderr, "awbquery: need -e or -query")
			os.Exit(2)
		}
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	q, err := calculus.ParseXML(src)
	if err != nil {
		fatal(err)
	}
	if *printXQ {
		fmt.Println(q.CompileXQuery())
		return
	}
	var ids []string
	switch *engine {
	case "native":
		nodes, err := q.EvalNative(model)
		if err != nil {
			fatal(err)
		}
		for _, n := range nodes {
			fmt.Printf("%s\t%s\t%s\n", n.ID, n.Type, n.Label())
		}
		return
	case "xquery":
		compiled, err := q.CompileWith(xq.WithLimits(ef.Limits()))
		if err != nil {
			fatal(err)
		}
		if ef.Explain {
			fmt.Print(compiled.Explain())
			return
		}
		var evalOpts []xq.Option
		var st xq.EvalStats
		if ef.Stats {
			evalOpts = append(evalOpts, xq.WithStats(&st))
		}
		ids, err = compiled.Run(model.ExportXML(), evalOpts...)
		if ef.Stats {
			fmt.Fprintln(os.Stderr, "stats:", st.String())
		}
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	for _, id := range ids {
		n, _ := model.Node(id)
		if n != nil {
			fmt.Printf("%s\t%s\t%s\n", n.ID, n.Type, n.Label())
		} else {
			fmt.Println(id)
		}
	}
}

func fatal(err error) {
	os.Exit(cliutil.Report(os.Stderr, "awbquery", err))
}
