package native

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lopsided/internal/docgen"
	"lopsided/internal/docgen/xqgen"
	"lopsided/internal/faultinject"
	"lopsided/internal/workload"
	"lopsided/internal/xmltree"
)

// countProblemSpans walks the generated document counting the inline
// degradation markers.
func countProblemSpans(n *xmltree.Node) int {
	count := 0
	if n.Kind == xmltree.ElementNode && n.Name == "span" {
		if cls, ok := n.Attr("class"); ok && cls == docgen.ProblemClass {
			count++
		}
	}
	for _, c := range n.Children() {
		count += countProblemSpans(c)
	}
	return count
}

func degradeFixture(t *testing.T, seed int64, rate float64) (*Generator, *faultinject.Injector) {
	t.Helper()
	inj := faultinject.New(seed, rate)
	gen := NewWith(Options{
		PropFault: func(nodeID, prop string) error {
			return inj.Hit(fmt.Sprintf("property %q of node %s", prop, nodeID))
		},
	})
	return gen, inj
}

func TestAccumulateModeSurvivesInjectedFaults(t *testing.T) {
	model := workload.BuildITModel(workload.Config{Seed: 5})
	template := workload.DegradeTemplate(4)

	// Fail-fast over the same faults: the first injected failure kills the
	// whole run — the behavior the accumulation mode exists to fix.
	ffGen, ffInj := degradeFixture(t, 99, 0.4)
	_, err := ffGen.GenerateMode(model, template, docgen.FailFast)
	if ffInj.FailureCount() > 0 && err == nil {
		t.Fatal("fail-fast run should abort on the first injected fault")
	}
	if _, ok := err.(*faultinject.FaultError); err != nil && !ok {
		t.Fatalf("fail-fast should surface the injected fault, got %T: %v", err, err)
	}

	// Accumulate over an identically-seeded injector: the run completes and
	// every injected failure is visible both as a problem entry and as an
	// inline marker in the document.
	accGen, accInj := degradeFixture(t, 99, 0.4)
	res, err := accGen.GenerateMode(model, template, docgen.Accumulate)
	if err != nil {
		t.Fatalf("accumulate mode aborted: %v", err)
	}
	injected := accInj.FailureCount()
	if injected == 0 {
		t.Fatal("fixture injected nothing; raise the rate or change the seed")
	}
	spans := countProblemSpans(res.Document)
	if spans != injected {
		t.Fatalf("document has %d problem markers for %d injected faults", spans, injected)
	}
	faultProblems := 0
	for _, p := range res.Problems {
		if strings.Contains(p, "injected") {
			faultProblems++
		}
	}
	if faultProblems != injected {
		t.Fatalf("problems list records %d injected faults, want %d (all problems: %v)",
			faultProblems, injected, res.Problems)
	}
	// The document is complete: the trailing content after the fault sites
	// still rendered.
	if res.Document.DocumentElement() == nil {
		t.Fatal("no document element")
	}
	doc := res.DocString()
	if !strings.Contains(doc, "Round 4") {
		t.Fatalf("later sections missing from degraded document:\n%s", doc)
	}
}

func TestAccumulateModeDegradesTemplateTrouble(t *testing.T) {
	// Recoverable template mistakes (a bad selector) degrade to markers
	// too, not only injected faults.
	model := workload.BuildITModel(workload.Config{Seed: 5})
	template := workload.ParseTemplate(
		`<template><body><for nodes="bogus.selector"><label/></for><p>after</p></body></template>`)
	gen := New()
	if _, err := gen.Generate(model, template); err == nil {
		t.Fatal("fail-fast should reject the bad selector")
	}
	res, err := gen.GenerateMode(model, template, docgen.Accumulate)
	if err != nil {
		t.Fatalf("accumulate mode aborted: %v", err)
	}
	if got := countProblemSpans(res.Document); got != 1 {
		t.Fatalf("expected 1 problem marker, got %d", got)
	}
	if len(res.Problems) != 1 || !strings.Contains(res.Problems[0], "bad selector") {
		t.Fatalf("problems = %v", res.Problems)
	}
	if !strings.Contains(res.DocString(), "<p>after</p>") {
		t.Fatal("content after the failed directive should still render")
	}
}

func TestAccumulateMatchesFailFastOnCleanRuns(t *testing.T) {
	// With no faults the two modes are byte-identical — degradation support
	// must not perturb healthy output.
	model := workload.BuildITModel(workload.Config{Seed: 5})
	template := workload.ParseTemplate(workload.SystemContextTemplate)
	gen := New()
	ff, err := gen.GenerateMode(model, template, docgen.FailFast)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := gen.GenerateMode(model, template, docgen.Accumulate)
	if err != nil {
		t.Fatal(err)
	}
	if ff.DocString() != acc.DocString() {
		t.Fatal("accumulate mode changed clean-run output")
	}
	if strings.Join(ff.Problems, "\n") != strings.Join(acc.Problems, "\n") {
		t.Fatalf("problem lists differ: %v vs %v", ff.Problems, acc.Problems)
	}
}

func TestXQueryGeneratorRefusesAccumulate(t *testing.T) {
	// The C1 asymmetry, as an executable fact: only the imperative rewrite
	// can degrade; the XQuery generator must refuse rather than pretend.
	model := workload.BuildITModel(workload.Config{Seed: 5})
	template := workload.ParseTemplate(workload.QuickTemplate)
	xg := xqgen.New()
	if _, err := xg.GenerateMode(model, template, docgen.Accumulate); !errors.Is(err, docgen.ErrModeUnsupported) {
		t.Fatalf("xquery generator should return ErrModeUnsupported, got %v", err)
	}
	// FailFast through GenerateMode still works.
	if _, err := xg.GenerateMode(model, template, docgen.FailFast); err != nil {
		t.Fatalf("xquery fail-fast via GenerateMode: %v", err)
	}
}
