package experiments

import (
	"errors"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "F1", "F2", "F3", "F4"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, err := Run("E99"); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

// TestFastExperiments runs the cheap, fully-deterministic experiments and
// checks their key assertions (the timing-heavy ones run via
// lopsided-bench and the benchmarks).
func TestFastExperiments(t *testing.T) {
	t.Run("E1", func(t *testing.T) {
		rep, err := Run("E1")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(rep.Verdict, "6/7") {
			t.Fatalf("E1 verdict: %s", rep.Verdict)
		}
		if !strings.Contains(rep.Text, "XQTY0024") {
			t.Fatal("E1 should show the element-rep error")
		}
	})
	t.Run("E2", func(t *testing.T) {
		rep, err := Run("E2")
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{`<el troubles="1"/>`, `a="1" a="2"`, "XQDY0025", "XQTY0024"} {
			if !strings.Contains(rep.Text, want) {
				t.Fatalf("E2 missing %q:\n%s", want, rep.Text)
			}
		}
	})
	t.Run("E7", func(t *testing.T) {
		rep, err := Run("E7")
		if err != nil {
			t.Fatal(err)
		}
		// The buggy configuration fires zero traces and eliminates one let.
		if !strings.Contains(rep.Text, "Galax-era O2, trace pure      50      0             1") {
			t.Fatalf("E7 table:\n%s", rep.Text)
		}
	})
	t.Run("E9", func(t *testing.T) {
		rep, err := Run("E9")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(rep.Verdict, "4/4") {
			t.Fatalf("E9 verdict: %s", rep.Verdict)
		}
	})
	t.Run("E3", func(t *testing.T) {
		rep, err := Run("E3")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(rep.Text, "== xquery (all-at-once): true") {
			t.Fatalf("E3 parity:\n%s", rep.Text)
		}
	})
}

func TestChainProgramsAgree(t *testing.T) {
	// The generated E4 programs must stay runnable and consistent.
	for _, k := range []int{1, 3} {
		xqSrc := XQueryChainProgram(k)
		if !strings.Contains(xqSrc, "local:required-child") {
			t.Fatal("chain program shape")
		}
		goSrc := GoChainProgram(k)
		if !strings.Contains(goSrc, "requiredChild") {
			t.Fatal("go chain shape")
		}
	}
	doc := chainDoc(3)
	out, err := GoChainRun(doc, 3)
	if err != nil || out != "c3" {
		t.Fatal(out, err)
	}
	if _, err := GoChainRun(chainDoc(2), 3); err == nil {
		t.Fatal("missing child should error")
	}
}

func TestHarnessContainsFailingExperiments(t *testing.T) {
	// Test-only runners, registered at the end of the F-series so they
	// never disturb the real experiment order.
	register("F98", "always fails", func() (Report, error) {
		return Report{}, errors.New("deliberate failure")
	})
	register("F99", "always panics", func() (Report, error) {
		panic("deliberate panic")
	})

	if _, err := Run("F98"); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("Run(F98) = %v, want the runner's error, annotated", err)
	}
	if _, err := Run("F99"); err == nil || !strings.Contains(err.Error(), "deliberate panic") {
		t.Fatalf("Run(F99) = %v, want the contained panic as an error", err)
	}

	// A RunAll-style sweep over the broken runners still visits both and
	// records each failure instead of dying on the first.
	seen := map[string]error{}
	for _, id := range []string{"F98", "F99"} {
		_, err := Run(id)
		seen[id] = err
	}
	if seen["F98"] == nil || seen["F99"] == nil {
		t.Fatalf("sweep lost a failure: %v", seen)
	}
}

func TestReportString(t *testing.T) {
	rep := Report{ID: "EX", Title: "T", Paper: "P", Text: "body", Verdict: "V"}
	s := rep.String()
	for _, want := range []string{"EX", "T", "P", "body", "V"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Report.String missing %q", want)
		}
	}
}

func TestCompiledSourcePreview(t *testing.T) {
	if !strings.Contains(CompiledSourcePreview(), "declare function local:is-node-subtype") {
		t.Fatal("preview should show the compiled prelude")
	}
}
