// Docgen: run the full document-generation subsystem both ways — the
// XQuery implementation (the paper's first system) and the native rewrite —
// on a synthetic IT-architecture model, verify byte-identity, and show the
// cost difference.
package main

import (
	"fmt"
	"time"

	"lopsided/internal/docgen/native"
	"lopsided/internal/docgen/xqgen"
	"lopsided/internal/workload"
	"lopsided/internal/xmltree"
)

func main() {
	model := workload.BuildITModel(workload.Config{Seed: 7, Users: 12, Systems: 4, Docs: 6})
	tpl := workload.ParseTemplate(workload.SystemContextTemplate)
	fmt.Printf("model: %+v\n\n", model.Stats())

	nat := native.New()
	xqg := xqgen.New()

	start := time.Now()
	resN, err := nat.Generate(model, tpl)
	if err != nil {
		panic(err)
	}
	natT := time.Since(start)

	start = time.Now()
	resX, err := xqg.Generate(model, tpl)
	if err != nil {
		panic(err)
	}
	xqT := time.Since(start)

	fmt.Printf("native  (mutable, one pass):   %8s, %d bytes, %d problems\n",
		natT.Round(time.Microsecond), len(resN.DocString()), len(resN.Problems))
	fmt.Printf("xquery  (5 phases, pure):      %8s, %d bytes, %d problems\n",
		xqT.Round(time.Microsecond), len(resX.DocString()), len(resX.Problems))
	fmt.Printf("byte-identical: %v\n\n", resN.DocString() == resX.DocString())

	for _, p := range resN.Problems {
		fmt.Println("problem:", p)
	}
	fmt.Println("\n--- document (first 40 lines) ---")
	pretty := xmltree.Serialize(resN.Document, xmltree.SerializeOptions{Indent: "  ", OmitDecl: true})
	printHead(pretty, 40)
}

func printHead(s string, n int) {
	count := 0
	line := []byte{}
	for i := 0; i < len(s) && count < n; i++ {
		if s[i] == '\n' {
			fmt.Println(string(line))
			line = line[:0]
			count++
			continue
		}
		line = append(line, s[i])
	}
	if count == n {
		fmt.Println("  ...")
	} else if len(line) > 0 {
		fmt.Println(string(line))
	}
}
