package xq

import (
	"fmt"
	"strings"
	"testing"
)

func TestCompileAndEval(t *testing.T) {
	q, err := Compile(`1 + 2`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.Eval(nil, nil)
	if err != nil || Serialize(out) != "3" {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestEvalWithContextAndVars(t *testing.T) {
	doc, err := ParseXML(`<lib><book>A</book><book>B</book></lib>`)
	if err != nil {
		t.Fatal(err)
	}
	q := MustCompile(`for $b in /lib/book where $b = $want return $b`)
	out, err := q.EvalString(nil, doc, WithVars(map[string]Sequence{"want": Singleton(String("B"))}))
	if err != nil || out != "<book>B</book>" {
		t.Fatalf("got %q, %v", out, err)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic on bad source")
		}
	}()
	MustCompile(`let $x :=`)
}

func TestOptionsPlumbing(t *testing.T) {
	var traced [][]string
	q, err := Compile(`let $d := trace("gone", 1) return 2`,
		WithOptLevel(O2),
		WithTraceEffectful(false),
		WithTracer(TraceFunc(func(v []string) { traced = append(traced, v) })),
	)
	if err != nil {
		t.Fatal(err)
	}
	if q.Stats.EliminatedLets != 1 {
		t.Fatalf("stats: %+v", q.Stats)
	}
	out, err := q.EvalString(nil, nil)
	if err != nil || out != "2" {
		t.Fatal(out, err)
	}
	if len(traced) != 0 {
		t.Fatal("trace should have been eliminated")
	}
}

func TestDocResolverOption(t *testing.T) {
	q, err := Compile(`count(doc("m")//x)`, WithDocResolver(func(uri string) (*Node, error) {
		return ParseXML(`<r><x/><x/><x/></r>`)
	}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.EvalString(nil, nil)
	if err != nil || out != "3" {
		t.Fatalf("got %q, %v", out, err)
	}
}

func TestDupAttrOption(t *testing.T) {
	src := `let $a := attribute a {1} let $b := attribute a {2} return <el>{$a}{$b}</el>`
	q := MustCompile(src, WithDupAttrPolicy(DupAttrGalaxBug))
	out, _ := q.EvalString(nil, nil)
	if out != `<el a="1" a="2"/>` {
		t.Fatalf("galax bug mode: %q", out)
	}
	q2 := MustCompile(src, WithDupAttrPolicy(DupAttrError))
	if _, err := q2.Eval(nil, nil); err == nil || !strings.Contains(err.Error(), "XQDY0025") {
		t.Fatalf("strict mode: %v", err)
	}
}

func TestMaxDepthOption(t *testing.T) {
	q := MustCompile(`declare function local:f($n) { local:f($n) }; local:f(1)`, WithMaxDepth(16))
	if _, err := q.Eval(nil, nil); err == nil {
		t.Fatal("expected recursion limit")
	}
}

func TestQueryReusable(t *testing.T) {
	q := MustCompile(`count(//i)`)
	a, _ := ParseXML(`<r><i/></r>`)
	b, _ := ParseXML(`<r><i/><i/></r>`)
	for i := 0; i < 2; i++ {
		if out, _ := q.EvalString(nil, a); out != "1" {
			t.Fatal("doc a")
		}
		if out, _ := q.EvalString(nil, b); out != "2" {
			t.Fatal("doc b")
		}
	}
}

func TestConcurrentEvaluation(t *testing.T) {
	// The facade documents that a compiled Query is "safe for repeated
	// evaluation (evaluations do not share mutable state)"; exercise that
	// claim under the race detector.
	q := MustCompile(`declare function local:f($n) {
	  if ($n le 0) then 0 else $n + local:f($n - 1)
	}; local:f($k) + count(//x)`)
	doc, _ := ParseXML(`<r><x/><x/></r>`)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		k := g
		go func() {
			for i := 0; i < 50; i++ {
				out, err := q.EvalString(nil, doc, WithVars(map[string]Sequence{
					"k": Singleton(Integer(k)),
				}))
				if err != nil {
					done <- err
					return
				}
				want := k*(k+1)/2 + 2
				if out != itoa(want) {
					done <- errf("got %s, want %d", out, want)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func errf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}
