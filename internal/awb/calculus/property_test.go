package calculus

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lopsided/internal/awb"
)

// randomModel builds a random small model over the paperModel metamodel.
func randomModel(t *testing.T, seed int64) *awb.Model {
	t.Helper()
	base, _ := paperModel(t)
	meta := base.Meta
	r := rand.New(rand.NewSource(seed))
	m := awb.NewModel(meta)
	types := []string{"User", "Superuser", "Program", "System"}
	labels := []string{"ant", "bee", "cat", "dog", "eel", "fox", "ant"} // duplicate labels on purpose
	n := 3 + r.Intn(10)
	nodes := make([]*awb.Node, 0, n)
	for i := 0; i < n; i++ {
		node := m.NewNode(types[r.Intn(len(types))])
		if r.Intn(4) > 0 { // some nodes have no label (fall back to ID)
			node.SetProp("label", labels[r.Intn(len(labels))])
		}
		if r.Intn(3) == 0 {
			node.SetProp("version", fmt.Sprintf("%d", r.Intn(3)))
		}
		nodes = append(nodes, node)
	}
	rels := []string{"likes", "favors", "uses"}
	for i := 0; i < n*2; i++ {
		m.Connect(rels[r.Intn(len(rels))], nodes[r.Intn(n)], nodes[r.Intn(n)])
	}
	return m
}

// randomQuery builds a random pipeline.
func randomQuery(r *rand.Rand) *Query {
	q := &Query{}
	if r.Intn(4) == 0 {
		q.StartID = fmt.Sprintf("N%d", 1+r.Intn(12))
	} else {
		q.StartType = []string{"User", "Entity", "Program"}[r.Intn(3)]
	}
	val := "1"
	steps := []Step{
		Follow{Relation: "likes"},
		Follow{Relation: "uses", TargetType: "Program"},
		Follow{Relation: "uses", Backward: true},
		FilterType{Type: "User"},
		FilterProperty{Name: "label"},
		FilterProperty{Name: "version", Value: &val},
		Distinct{},
		SortByLabel{},
		Limit{N: r.Intn(6)},
	}
	for i := 0; i < 1+r.Intn(4); i++ {
		q.Steps = append(q.Steps, steps[r.Intn(len(steps))])
	}
	return q
}

// TestQuickNativeXQueryEquivalence is the repository's strongest property:
// for random models and random pipelines, the native evaluator and the
// compiled-to-XQuery evaluator agree exactly. This pins down that the two
// implementations the paper's team refused to maintain really do compute
// the same language.
func TestQuickNativeXQueryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("interpreted XQuery is slow; skipped in -short")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(t, seed)
		q := randomQuery(r)
		native, err := q.EvalNative(m)
		if err != nil {
			t.Logf("native error: %v", err)
			return false
		}
		viaXQ, err := q.EvalXQuery(m)
		if err != nil {
			t.Logf("xquery error: %v\n%s", err, q.CompileXQuery())
			return false
		}
		nIDs := IDs(native)
		if len(nIDs) == 0 && len(viaXQ) == 0 {
			return true
		}
		if !reflect.DeepEqual(nIDs, viaXQ) {
			t.Logf("seed %d: native=%v xquery=%v\n%s", seed, nIDs, viaXQ, q.CompileXQuery())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
