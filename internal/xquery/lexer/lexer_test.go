package lexer

import (
	"strings"
	"testing"
)

// scanTokens tokenizes src to EOF.
func scanTokens(t *testing.T, src string) []Token {
	t.Helper()
	l := New(src)
	var out []Token
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == EOF {
			return out
		}
		out = append(out, tok)
	}
}

// scanAll returns "KIND:text" strings for value assertions.
func scanAll(t *testing.T, src string) []string {
	t.Helper()
	var out []string
	for _, tok := range scanTokens(t, src) {
		out = append(out, tok.Kind.String()+":"+tok.Text)
	}
	return out
}

func kinds(t *testing.T, src string) string {
	t.Helper()
	var ks []string
	for _, tok := range scanTokens(t, src) {
		ks = append(ks, tok.Kind.String())
	}
	return strings.Join(ks, " ")
}

func TestDashIsANameCharacter(t *testing.T) {
	// Quirk #3: $n-1 is one variable.
	toks := scanAll(t, `$n-1`)
	if len(toks) != 1 || toks[0] != "variable:n-1" {
		t.Fatalf("$n-1 = %v", toks)
	}
	// With whitespace it is three tokens.
	if got := kinds(t, `$n - 1`); got != "variable '-' integer literal" {
		t.Fatalf("$n - 1 kinds = %q", got)
	}
	// foo-3 is a single name (names may contain digits after the start).
	toks = scanAll(t, `foo-3`)
	if len(toks) != 1 || toks[0] != "name:foo-3" {
		t.Fatalf("foo-3 = %v", toks)
	}
	// But 3-foo is a number, minus, name... actually '-' then name.
	if got := kinds(t, `3 -foo`); got != "integer literal '-' name" {
		t.Fatalf("3 -foo = %q", got)
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct{ src, want string }{
		{`42`, "integer literal:42"},
		{`3.14`, "decimal literal:3.14"},
		{`.5`, "decimal literal:.5"},
		{`1e3`, "double literal:1e3"},
		{`1.5E-2`, "double literal:1.5E-2"},
		{`4.`, "decimal literal:4."},
	}
	for _, c := range cases {
		toks := scanAll(t, c.src)
		if len(toks) != 1 || toks[0] != c.want {
			t.Errorf("%q = %v, want %v", c.src, toks, c.want)
		}
	}
	// "1foo" is a lexical error.
	l := New("1foo")
	if _, err := l.Next(); err == nil {
		t.Fatal("1foo should be a lexical error")
	}
	// ".." does not start a decimal.
	if got := kinds(t, `1 .. 2`); got != "integer literal '..' integer literal" {
		t.Fatalf("dotdot: %q", got)
	}
	// "1e" without digits: e is a separate name.
	if got := kinds(t, `1 e`); got != "integer literal name" {
		t.Fatalf("bare e: %q", got)
	}
}

func TestQNamesAndWildcards(t *testing.T) {
	toks := scanAll(t, `fn:doc`)
	if len(toks) != 1 || toks[0] != "name:fn:doc" {
		t.Fatalf("QName = %v", toks)
	}
	toks = scanAll(t, `pre:*`)
	if len(toks) != 1 || toks[0] != "name:pre:*" {
		t.Fatalf("pre:* = %v", toks)
	}
	toks = scanAll(t, `*:local`)
	if len(toks) != 1 || toks[0] != "name:*:local" {
		t.Fatalf("*:local = %v", toks)
	}
	// child::x does not eat the axis separator.
	if got := kinds(t, `child::x`); got != "name '::' name" {
		t.Fatalf("axis: %q", got)
	}
	// a := b does not form a QName with the assign.
	if got := kinds(t, `$x := 1`); got != "variable ':=' integer literal" {
		t.Fatalf("assign: %q", got)
	}
}

func TestStringsAndEntities(t *testing.T) {
	toks := scanAll(t, `"don""t"`)
	if toks[0] != `string literal:don"t` {
		t.Fatalf("doubled quotes: %v", toks)
	}
	toks = scanAll(t, `'it''s'`)
	if toks[0] != "string literal:it's" {
		t.Fatalf("doubled apostrophes: %v", toks)
	}
	toks = scanAll(t, `"a&lt;b&#65;"`)
	if toks[0] != "string literal:a<bA" {
		t.Fatalf("entities: %v", toks)
	}
	l := New(`"unterminated`)
	if _, err := l.Next(); err == nil {
		t.Fatal("unterminated string")
	}
	l = New(`"bad &nope; entity"`)
	if _, err := l.Next(); err == nil {
		t.Fatal("bad entity in string")
	}
}

func TestCommentsNestAndPositions(t *testing.T) {
	if got := kinds(t, `1 (: a (: b :) c :) 2`); got != "integer literal integer literal" {
		t.Fatalf("nested comments: %q", got)
	}
	l := New("(: never closed")
	if _, err := l.Next(); err == nil {
		t.Fatal("unterminated comment")
	}
	// Positions are 1-based and track newlines.
	l = New("1\n  abc")
	tok, _ := l.Next()
	if tok.Pos.Line != 1 || tok.Pos.Col != 1 {
		t.Fatalf("first pos: %+v", tok.Pos)
	}
	tok, _ = l.Next()
	if tok.Pos.Line != 2 || tok.Pos.Col != 3 {
		t.Fatalf("second pos: %+v", tok.Pos)
	}
}

func TestPunctuationLongestMatch(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<=`, "'<='"},
		{`<<`, "'<<'"},
		{`>=`, "'>='"},
		{`>>`, "'>>'"},
		{`!=`, "'!='"},
		{`//`, "'//'"},
		{`::`, "'::'"},
		{`|`, "'|'"},
		{`@`, "'@'"},
		{`?`, "'?'"},
	}
	for _, c := range cases {
		if got := kinds(t, c.src); got != c.want {
			t.Errorf("%q = %q, want %q", c.src, got, c.want)
		}
	}
	// < followed by space is just less-than.
	if got := kinds(t, `1 < 2`); got != "integer literal '<' integer literal" {
		t.Fatalf("lt: %q", got)
	}
}

func TestSaveRestore(t *testing.T) {
	l := New("a b c")
	save := l.Save()
	t1, _ := l.Next()
	l.Restore(save)
	t2, _ := l.Next()
	if t1.Text != t2.Text || t1.Pos != t2.Pos {
		t.Fatal("Save/Restore not idempotent")
	}
	// RestoreOffset recomputes line/col.
	l = New("ab\ncd")
	for i := 0; i < 2; i++ {
		if _, err := l.Next(); err != nil {
			t.Fatal(err)
		}
	}
	l.RestoreOffset(3)
	if p := l.Pos(); p.Line != 2 || p.Col != 1 {
		t.Fatalf("RestoreOffset pos: %+v", p)
	}
}

func TestRawMode(t *testing.T) {
	l := New(`<el attr="v">text</el>`)
	if l.RawPeek() != '<' {
		t.Fatal("RawPeek")
	}
	l.RawAdvance(1)
	name, err := l.RawScanQName()
	if err != nil || name != "el" {
		t.Fatal("RawScanQName")
	}
	l.RawSkipSpace()
	if !l.RawHasPrefix("attr=") {
		t.Fatal("RawHasPrefix")
	}
	if l.RawIndex(">") < 0 {
		t.Fatal("RawIndex")
	}
	if got := l.RawSlice(4); got != "attr" {
		t.Fatalf("RawSlice: %q", got)
	}
	// QName scan at EOF errors.
	l2 := New("")
	if _, err := l2.RawScanQName(); err == nil {
		t.Fatal("RawScanQName at EOF")
	}
	if !l2.RawEOF() {
		t.Fatal("RawEOF")
	}
}

func TestVarErrors(t *testing.T) {
	l := New("$ 1")
	if _, err := l.Next(); err == nil {
		t.Fatal("$ without name")
	}
	l = New("$")
	if _, err := l.Next(); err == nil {
		t.Fatal("$ at EOF")
	}
	l = New("#")
	if _, err := l.Next(); err == nil {
		t.Fatal("unknown character")
	}
}

func TestParseNumberHelper(t *testing.T) {
	l := New("42 2.5")
	tok, _ := l.Next()
	i, _, err := ParseNumber(tok)
	if err != nil || i != 42 {
		t.Fatal("ParseNumber int")
	}
	tok, _ = l.Next()
	_, f, err := ParseNumber(tok)
	if err != nil || f != 2.5 {
		t.Fatal("ParseNumber decimal")
	}
	if _, _, err := ParseNumber(Token{Kind: NAME}); err == nil {
		t.Fatal("ParseNumber of name")
	}
}

func TestKindStrings(t *testing.T) {
	if EOF.String() != "end of input" || Kind(99).String() == "" {
		t.Fatal("Kind.String")
	}
	e := &Error{Pos: tokenPos(3, 7), Msg: "boom"}
	if !strings.Contains(e.Error(), "3:7") {
		t.Fatal("Error position formatting")
	}
}

func tokenPos(line, col int) (p struct{ Line, Col int }) {
	p.Line, p.Col = line, col
	return p
}
