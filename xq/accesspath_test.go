package xq

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"lopsided/internal/xmltree"
)

const apDoc = `<r>
  <item n="1" k="k0"><sub><item n="1.1" k="k1"/></sub></item>
  <item n="2" k="k1">beta</item>
  <group><item n="3" k="k0"/><other k="k0"/></group>
  <empty/>
</r>`

// TestExplainShowsAccessPaths is the ISSUE acceptance criterion: EXPLAIN
// must print IndexScan (not TreeWalk) for `//name` and `[@attr = 'v']` on
// eligible queries, and name the fallback reason for ineligible ones.
func TestExplainShowsAccessPaths(t *testing.T) {
	cases := []struct {
		src   string
		want  string
		avoid string
	}{
		{`//item`, "access path IndexScan descendant::item", "TreeWalk"},
		{`/r//item`, "access path IndexScan descendant::item", "TreeWalk"},
		{`/r/item[@k = 'k0']`, "folded [@k = 'k0']", "TreeWalk"},
		{`//item[@k = 'k1']`, "access path IndexScan descendant::item (fused // into descendant::item, folded [@k = 'k1'])", "TreeWalk"},
		{`/r/item`, "access path SynopsisPrune child::item", "IndexScan"},
		// Positional predicate blocks fusion: per-parent vs global counting.
		{`//item[2]`, "access path SynopsisPrune child::item", "IndexScan descendant"},
		// Reverse axes stay tree walks, with the reason printed.
		{`//item/ancestor::r`, "access path TreeWalk ancestor::r (ancestor axis not indexed)", ""},
		{`//*`, "access path TreeWalk", "IndexScan"},
	}
	for _, tc := range cases {
		q, err := Compile(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		plan := q.Explain()
		if !strings.Contains(plan, tc.want) {
			t.Errorf("%s: EXPLAIN missing %q:\n%s", tc.src, tc.want, plan)
		}
		if tc.avoid != "" && strings.Contains(plan, tc.avoid) {
			t.Errorf("%s: EXPLAIN unexpectedly mentions %q:\n%s", tc.src, tc.avoid, plan)
		}
	}
	// O0 never plans access paths.
	q, err := Compile(`//item`, WithOptLevel(O0))
	if err != nil {
		t.Fatal(err)
	}
	if plan := q.Explain(); strings.Contains(plan, "IndexScan") {
		t.Errorf("O0 plan mentions IndexScan:\n%s", plan)
	}
	// WithAccessPaths(false) forces walks at any level.
	q, err = Compile(`//item`, WithAccessPaths(false))
	if err != nil {
		t.Fatal(err)
	}
	if plan := q.Explain(); strings.Contains(plan, "IndexScan") {
		t.Errorf("WithAccessPaths(false) plan mentions IndexScan:\n%s", plan)
	}
}

// TestIndexedEvalMatchesWalk evaluates a battery of path queries on frozen,
// unfrozen, and lazily-cloned documents across O0–O2 with access paths on
// and off, asserting byte-identical serialized results. This is the
// doc-order satellite: SortDocOrder and index-produced node lists must
// agree on ordering and dedup for nodes from shared COW clones.
func TestIndexedEvalMatchesWalk(t *testing.T) {
	queries := []string{
		`//item`,
		`//item/@n`,
		`/r//item`,
		`/r/item`,
		`/r/item[@k = 'k0']`,
		`//item[@k = 'k1']`,
		`//item[@k = 'k0']/@n`,
		`/r//item[@k = 'k1']`,
		`//sub//item`,
		`//item[2]`,
		`//missing`,
		`/r/empty/item`,
		`(//item, /r//item)`,
		`//item | /r/group/item`,
		`//item[@k = 'k0'] | //other | //item`,
		`for $i in //item return $i/@n`,
		`count(//item[@k = 'k0'])`,
		`//item[sub]`,
		`//item[@k = 'k0'][1]`,
		`/r/group/item[@k = 'k0']`,
		`//item/parent::*`,
	}
	// Three context trees: frozen source, a lazy clone of it (mutable,
	// must never be served the source's index), and a fresh unfrozen parse.
	frozen, err := ParseXML(apDoc)
	if err != nil {
		t.Fatal(err)
	}
	Freeze(frozen)
	clone := frozen.Clone()
	plain, _ := ParseXML(apDoc)
	docs := map[string]*Node{"frozen": frozen, "clone": clone, "plain": plain}

	for _, src := range queries {
		var want string
		first := true
		for _, lvl := range []OptLevel{O0, O1, O2} {
			for _, indexed := range []bool{true, false} {
				q, err := Compile(src, WithOptLevel(lvl), WithAccessPaths(indexed))
				if err != nil {
					t.Fatalf("%s: %v", src, err)
				}
				for dname, doc := range docs {
					got, err := q.EvalString(context.Background(), doc)
					if err != nil {
						t.Fatalf("%s (O%d indexed=%v %s): %v", src, lvl, indexed, dname, err)
					}
					if first {
						want, first = got, false
					} else if got != want {
						t.Errorf("%s (O%d indexed=%v %s):\n got %q\nwant %q",
							src, lvl, indexed, dname, got, want)
					}
				}
			}
		}
	}
}

// TestIndexHitStats proves the indexed configuration actually uses the
// index on a frozen tree (rather than silently walking everywhere) and
// that per-eval stats report the traffic.
func TestIndexHitStats(t *testing.T) {
	doc, err := ParseXML(apDoc)
	if err != nil {
		t.Fatal(err)
	}
	Freeze(doc)
	q, err := Compile(`count(//item[@k = 'k0'])`)
	if err != nil {
		t.Fatal(err)
	}
	var st EvalStats
	out, err := q.EvalString(context.Background(), doc, WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if out != "2" {
		t.Fatalf("result %q, want 2", out)
	}
	if st.IndexHits == 0 {
		t.Fatalf("no index hits recorded on a frozen tree: %+v", st)
	}
	if !strings.Contains(st.String(), "index=") {
		t.Fatalf("stats line missing index traffic: %s", st.String())
	}

	// The same query over an unfrozen tree must fall back, not fail.
	plain, _ := ParseXML(apDoc)
	var st2 EvalStats
	out2, err := q.EvalString(context.Background(), plain, WithStats(&st2))
	if err != nil || out2 != "2" {
		t.Fatalf("unfrozen eval: %q %v", out2, err)
	}
	if st2.IndexHits != 0 {
		t.Fatalf("index hits on an unfrozen tree: %+v", st2)
	}
	if st2.IndexFallbacks == 0 {
		t.Fatalf("no fallbacks recorded on an unfrozen tree: %+v", st2)
	}
}

// TestIndexedDuplicateAttrPredicate pins the duplicate-attribute seam: the
// folded [@attr = 'v'] probe must stay existential over every same-named
// attribute, exactly like the general comparison it replaced.
func TestIndexedDuplicateAttrPredicate(t *testing.T) {
	d := xmltree.NewDocument()
	r := xmltree.NewElement("r")
	e := xmltree.NewElement("item")
	e.AttachAttrDup(xmltree.NewAttr("k", "a"))
	e.AttachAttrDup(xmltree.NewAttr("k", "b"))
	r.AppendChild(e)
	d.AppendChild(r)

	for _, freeze := range []bool{false, true} {
		doc := d.CloneEager()
		if freeze {
			Freeze(doc)
		}
		for _, indexed := range []bool{true, false} {
			q, err := Compile(`count(//item[@k = 'b'])`, WithAccessPaths(indexed))
			if err != nil {
				t.Fatal(err)
			}
			out, err := q.EvalString(context.Background(), doc)
			if err != nil {
				t.Fatal(err)
			}
			if out != "1" {
				t.Fatalf("frozen=%v indexed=%v: existential dup-attr match lost: %q",
					freeze, indexed, out)
			}
		}
	}
}

// TestIndexSharedAcrossClones checks the memoization story end to end: many
// clones of one frozen tree evaluate concurrently and the index is built
// once, on the source, while clones keep correct (walked) results.
func TestIndexSharedAcrossClones(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, `<item n="%d" k="k%d"/>`, i, i%5)
	}
	b.WriteString("</r>")
	doc, err := ParseXML(b.String())
	if err != nil {
		t.Fatal(err)
	}
	Freeze(doc)
	q, err := Compile(`count(//item[@k = 'k2'])`)
	if err != nil {
		t.Fatal(err)
	}
	// Force the one-time build.
	if out, _ := q.EvalString(context.Background(), doc); out != "100" {
		t.Fatalf("baseline: %v", out)
	}
	var st EvalStats
	for i := 0; i < 4; i++ {
		out, err := q.EvalString(context.Background(), doc, WithStats(&st))
		if err != nil || out != "100" {
			t.Fatalf("repeat eval: %q %v", out, err)
		}
		if st.IndexBuilds != 0 {
			t.Fatalf("repeat eval rebuilt the index: %+v", st)
		}
		if st.IndexHits == 0 {
			t.Fatalf("repeat eval missed the index: %+v", st)
		}
	}
}
