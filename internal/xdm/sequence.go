package xdm

import (
	"strings"
	"sync"

	"lopsided/internal/xmltree"
)

// Sequence is a flat, ordered sequence of items. The zero value is the empty
// sequence. Because Item has no sequence implementation, sequences of
// sequences are unrepresentable: combining sequences always concatenates,
// which is precisely XQuery's flattening rule — (1,(2,3,4),(),(5,((6,7))))
// is (1,2,3,4,5,6,7).
type Sequence []Item

// Empty is the empty sequence, ().
var Empty = Sequence{}

// Of builds a sequence from items.
func Of(items ...Item) Sequence { return Sequence(items) }

// Singleton wraps one item as a sequence. In XQuery there is no distinction
// between an item and the singleton sequence containing it.
func Singleton(it Item) Sequence { return Sequence{it} }

// Concat concatenates sequences. This is the XQuery comma operator: any
// internal sequence structure is washed out.
func Concat(seqs ...Sequence) Sequence {
	n := 0
	for _, s := range seqs {
		n += len(s)
	}
	if n == 0 {
		return Empty
	}
	out := make(Sequence, 0, n)
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}

// IsEmpty reports whether the sequence is ().
func (s Sequence) IsEmpty() bool { return len(s) == 0 }

// IsSingleton reports whether the sequence has exactly one item.
func (s Sequence) IsSingleton() bool { return len(s) == 1 }

// One returns the sequence's single item. It returns an XPTY0004 error for
// empty or multi-item sequences; callers implement the `eq`-family operators
// and singleton-expecting functions with it.
func (s Sequence) One() (Item, error) {
	if len(s) != 1 {
		return nil, Errf("XPTY0004", "expected a single item, got a sequence of %d", len(s))
	}
	return s[0], nil
}

// AtMostOne returns the single item or nil for empty; errors on length > 1.
func (s Sequence) AtMostOne() (Item, error) {
	switch len(s) {
	case 0:
		return nil, nil
	case 1:
		return s[0], nil
	default:
		return nil, Errf("XPTY0004", "expected at most one item, got %d", len(s))
	}
}

// StringJoin returns the space-joined string values of all items, the
// content form used when a sequence lands in element or attribute content.
func (s Sequence) StringJoin() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.StringValue()
	}
	return strings.Join(parts, " ")
}

// Nodes returns the nodes of a sequence, erroring (XPTY0019) if any item is
// not a node; path steps require node sequences.
func (s Sequence) Nodes() ([]*xmltree.Node, error) {
	out := make([]*xmltree.Node, 0, len(s))
	for _, it := range s {
		n, ok := IsNode(it)
		if !ok {
			return nil, Errf("XPTY0019", "path step applied to non-node item %s", it.TypeName())
		}
		out = append(out, n)
	}
	return out, nil
}

// FromNodes wraps nodes as a sequence.
func FromNodes(nodes []*xmltree.Node) Sequence {
	out := make(Sequence, len(nodes))
	for i, n := range nodes {
		out[i] = NewNode(n)
	}
	return out
}

// Atomize converts every item to its typed value: atomics pass through,
// nodes become xs:untypedAtomic of their string value (untyped mode; the
// project never had a usable schema, as the paper recounts).
//
// A sequence with no nodes atomizes to itself and is returned without
// copying; callers must treat the result as read-only. Mixed sequences are
// copied once (the node items change type), but node conversion itself is
// copy-free when the node is frozen and was atomized before: the boxed
// xs:untypedAtomic value is memoized on the node, so repeated atomization of
// shared (copy-on-write) subtrees allocates nothing per node.
func Atomize(s Sequence) Sequence {
	first := -1
	for i, it := range s {
		if _, ok := it.(NodeItem); ok {
			first = i
			break
		}
	}
	if first < 0 {
		return s
	}
	if len(s) == 1 {
		return Sequence{AtomizeNode(s[0].(NodeItem).Node)}
	}
	out := make(Sequence, len(s))
	copy(out, s[:first])
	for i := first; i < len(s); i++ {
		if n, ok := IsNode(s[i]); ok {
			out[i] = AtomizeNode(n)
		} else {
			out[i] = s[i]
		}
	}
	return out
}

// AtomizeNode atomizes one node to xs:untypedAtomic, reusing (and, for
// frozen nodes, populating) the node's atom-cache slot so that atomizing the
// same shared node twice returns the identical boxed value.
func AtomizeNode(n *xmltree.Node) Item {
	if v := n.AtomCache(); v != nil {
		return v.(Item)
	}
	u := Untyped(n.StringValue())
	if n.Frozen() {
		n.SetAtomCache(Item(u))
	}
	return u
}

// EffectiveBool computes the effective boolean value of a sequence:
// () is false; a sequence whose first item is a node is true; a singleton
// boolean is itself; a singleton string/untyped is its non-emptiness; a
// singleton numeric is non-zero-and-not-NaN; anything else is FORG0006.
func EffectiveBool(s Sequence) (bool, error) {
	if len(s) == 0 {
		return false, nil
	}
	if _, ok := IsNode(s[0]); ok {
		return true, nil
	}
	if len(s) > 1 {
		return false, Errf("FORG0006", "effective boolean value of a multi-item non-node sequence")
	}
	switch v := s[0].(type) {
	case Boolean:
		return bool(v), nil
	case String:
		return len(v) > 0, nil
	case Untyped:
		return len(v) > 0, nil
	case Integer:
		return v != 0, nil
	case Decimal:
		return v != 0, nil
	case Double:
		f := float64(v)
		return f == f && f != 0, nil
	}
	return false, Errf("FORG0006", "no effective boolean value for %s", s[0].TypeName())
}

// nodeBufPool recycles the []*xmltree.Node scratch SortDoc unwraps into;
// every XPath step result passes through here, so the buffer churn is hot.
var nodeBufPool = sync.Pool{New: func() any {
	xmltree.NotePoolMiss()
	return new([]*xmltree.Node)
}}

// SortDoc sorts a node sequence into document order with duplicate removal.
// Non-node items cause an XPTY0018 error (mixed path results are illegal).
//
// SortDoc takes ownership of s: the returned sequence reuses s's backing
// array, so callers must not use s afterwards.
func SortDoc(s Sequence) (Sequence, error) {
	if len(s) == 0 {
		return s, nil
	}
	if len(s) == 1 {
		if _, ok := IsNode(s[0]); !ok {
			return nil, Errf("XPTY0018", "path result mixes nodes and atomic values")
		}
		return s, nil
	}
	xmltree.NotePoolGet()
	bp := nodeBufPool.Get().(*[]*xmltree.Node)
	nodes := (*bp)[:0]
	for _, it := range s {
		n, ok := IsNode(it)
		if !ok {
			*bp = nodes
			nodeBufPool.Put(bp)
			return nil, Errf("XPTY0018", "path result mixes nodes and atomic values")
		}
		nodes = append(nodes, n)
	}
	sorted := xmltree.SortDocOrder(nodes)
	out := s[:0]
	for _, n := range sorted {
		out = append(out, NewNode(n))
	}
	*bp = nodes[:0]
	nodeBufPool.Put(bp)
	return out, nil
}
