// Package workload builds deterministic synthetic AWB models and document
// templates for tests, examples, and the experiment harness.
//
// The paper's models are unavailable (AWB was an internal IBM tool), so the
// generator produces graphs with the same structural features the paper
// describes: an IT-architecture metamodel (Systems that `has` Servers,
// Subsystems and Users "in dozens of ways"), advisory-violating edges and
// user-added properties (the overrides AWB had to tolerate), documents with
// missing version information (the Omissions scenario), and HTML-valued
// properties (the schema-drift source). A seeded RNG makes every workload
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"lopsided/internal/awb"
)

// ITMetamodel builds the IT-architecture metamodel the paper's AWB shipped
// with (reconstructed from the paper's examples).
func ITMetamodel() *awb.Metamodel {
	m := awb.NewMetamodel("it-architecture")
	nt := func(name, parent string, props ...awb.PropertyDecl) {
		if _, err := m.DefineNodeType(name, parent, props...); err != nil {
			panic(err)
		}
	}
	rt := func(name, parent string, eps ...awb.Endpoint) {
		if _, err := m.DefineRelationType(name, parent, eps...); err != nil {
			panic(err)
		}
	}
	label := awb.PropertyDecl{Name: "label", Kind: awb.PropString, Recommended: true}
	nt("Entity", "", label)
	nt("Actor", "Entity", awb.PropertyDecl{Name: "biography", Kind: awb.PropHTML})
	nt("User", "Actor")
	nt("Superuser", "User")
	nt("System", "Entity", awb.PropertyDecl{Name: "description", Kind: awb.PropHTML})
	nt("SystemBeingDesigned", "System")
	nt("Subsystem", "System")
	nt("Server", "Entity")
	nt("Program", "Entity")
	nt("Requirement", "Entity")
	nt("PerformanceRequirement", "Requirement")
	nt("Document", "Entity", awb.PropertyDecl{Name: "version", Kind: awb.PropString, Recommended: true})

	rt("related-to", "")
	rt("has", "related-to",
		awb.Endpoint{Source: "System", Target: "Server"},
		awb.Endpoint{Source: "System", Target: "Subsystem"},
		awb.Endpoint{Source: "System", Target: "User"},
		awb.Endpoint{Source: "System", Target: "Requirement"})
	rt("uses", "related-to",
		awb.Endpoint{Source: "Actor", Target: "System"},
		awb.Endpoint{Source: "System", Target: "Program"})
	rt("runs", "related-to", awb.Endpoint{Source: "Server", Target: "Program"})
	rt("likes", "related-to", awb.Endpoint{Source: "Actor", Target: "Actor"})
	rt("favors", "likes")
	rt("documents", "related-to", awb.Endpoint{Source: "Document", Target: "Entity"})

	m.Singletons = []string{"SystemBeingDesigned"}
	return m
}

// GlassMetamodel builds the antique-glass-dealer metamodel — the paper's
// proof that AWB "has retargeted" cleanly.
func GlassMetamodel() *awb.Metamodel {
	m := awb.NewMetamodel("glass-catalog")
	nt := func(name, parent string, props ...awb.PropertyDecl) {
		if _, err := m.DefineNodeType(name, parent, props...); err != nil {
			panic(err)
		}
	}
	rt := func(name, parent string, eps ...awb.Endpoint) {
		if _, err := m.DefineRelationType(name, parent, eps...); err != nil {
			panic(err)
		}
	}
	label := awb.PropertyDecl{Name: "label", Kind: awb.PropString, Recommended: true}
	nt("Thing", "", label)
	nt("Piece", "Thing",
		awb.PropertyDecl{Name: "period", Kind: awb.PropString},
		awb.PropertyDecl{Name: "notes", Kind: awb.PropHTML},
		awb.PropertyDecl{Name: "price", Kind: awb.PropInteger})
	nt("Goblet", "Piece")
	nt("Vase", "Piece")
	nt("Paperweight", "Piece")
	nt("Maker", "Thing")
	nt("Customer", "Thing")

	rt("related-to", "")
	rt("made-by", "related-to", awb.Endpoint{Source: "Piece", Target: "Maker"})
	rt("bought", "related-to", awb.Endpoint{Source: "Customer", Target: "Piece"})
	rt("admires", "related-to", awb.Endpoint{Source: "Customer", Target: "Maker"})
	// No SystemBeingDesigned singleton here: "the glass catalog doesn't
	// have a SystemBeingDesigned node at all, nor a warning about it."
	return m
}

// Config sizes a synthetic IT model. The zero value is adjusted to a small
// but non-trivial model.
type Config struct {
	Seed     int64
	Users    int
	Systems  int
	Servers  int
	Programs int
	Docs     int
	// OmitSystemBeingDesigned leaves out the singleton (exercises the
	// advisory machinery and error paths).
	OmitSystemBeingDesigned bool
	// MissingVersionEvery makes every k-th document lack its version
	// property (the Omissions window scenario); 0 disables.
	MissingVersionEvery int
	// OverrideEvery adds a metamodel-violating edge and a user-added
	// property on every k-th user; 0 disables.
	OverrideEvery int
}

func (c *Config) fill() {
	if c.Users == 0 {
		c.Users = 8
	}
	if c.Systems == 0 {
		c.Systems = 3
	}
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.Programs == 0 {
		c.Programs = 5
	}
	if c.Docs == 0 {
		c.Docs = 4
	}
	if c.MissingVersionEvery == 0 {
		c.MissingVersionEvery = 3
	}
	if c.OverrideEvery == 0 {
		c.OverrideEvery = 4
	}
}

var firstNames = []string{
	"Alice", "Bard", "Carol", "Dmitri", "Elena", "Farid", "Grace", "Hugo",
	"Iris", "Jorge", "Kiran", "Lena", "Marta", "Nils", "Oksana", "Priya",
	"Quentin", "Rosa", "Sven", "Tomoko", "Uma", "Viktor", "Wanda", "Ximena",
	"Yusuf", "Zelda",
}

var systemWords = []string{
	"Payments", "Inventory", "Ledger", "Catalog", "Dispatch", "Billing",
	"Archive", "Gateway", "Telemetry", "Provisioning", "Scheduler", "Registry",
}

var programWords = []string{
	"parser", "indexer", "renderer", "collector", "planner", "migrator",
	"watcher", "reporter", "balancer", "resolver",
}

// BuildITModel generates a deterministic synthetic model.
func BuildITModel(cfg Config) *awb.Model {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := awb.NewModel(ITMetamodel())

	var sbd *awb.Node
	if !cfg.OmitSystemBeingDesigned {
		sbd = m.NewNode("SystemBeingDesigned")
		sbd.SetProp("label", "The Grand Design")
		sbd.SetProp("description", "<p>The system <b>being designed</b>, per the metamodel's fond hopes.</p>")
	}

	systems := make([]*awb.Node, 0, cfg.Systems)
	for i := 0; i < cfg.Systems; i++ {
		s := m.NewNode("System")
		s.SetProp("label", fmt.Sprintf("%s System %02d", systemWords[rng.Intn(len(systemWords))], i+1))
		s.SetProp("description", fmt.Sprintf("<p>Subsystem count: <i>%d</i></p>", rng.Intn(5)))
		systems = append(systems, s)
		if sbd != nil {
			m.Connect("has", sbd, s)
		}
	}
	servers := make([]*awb.Node, 0, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		s := m.NewNode("Server")
		s.SetProp("label", fmt.Sprintf("srv-%03d", i+1))
		servers = append(servers, s)
		if len(systems) > 0 {
			m.Connect("has", systems[rng.Intn(len(systems))], s)
		}
	}
	programs := make([]*awb.Node, 0, cfg.Programs)
	for i := 0; i < cfg.Programs; i++ {
		p := m.NewNode("Program")
		p.SetProp("label", fmt.Sprintf("%s-%02d", programWords[rng.Intn(len(programWords))], i+1))
		programs = append(programs, p)
		if len(servers) > 0 {
			m.Connect("runs", servers[rng.Intn(len(servers))], p)
		}
		if len(systems) > 0 {
			m.Connect("uses", systems[rng.Intn(len(systems))], p)
		}
	}
	users := make([]*awb.Node, 0, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		typ := "User"
		if i%5 == 4 {
			typ = "Superuser"
		}
		u := m.NewNode(typ)
		u.SetProp("label", fmt.Sprintf("%s %c.", firstNames[rng.Intn(len(firstNames))], 'A'+rng.Intn(26)))
		u.SetProp("biography", fmt.Sprintf("<p>Joined in <b>%d</b>.</p>", 1990+rng.Intn(15)))
		users = append(users, u)
		if len(systems) > 0 {
			m.Connect("uses", u, systems[rng.Intn(len(systems))])
			m.Connect("has", systems[rng.Intn(len(systems))], u)
		}
	}
	for i, u := range users {
		if len(users) > 1 {
			other := users[rng.Intn(len(users))]
			if other != u {
				rel := "likes"
				if rng.Intn(3) == 0 {
					rel = "favors"
				}
				m.Connect(rel, u, other)
			}
		}
		if cfg.OverrideEvery > 0 && i%cfg.OverrideEvery == cfg.OverrideEvery-1 {
			// The paper's user overrides: an undeclared property and a
			// metamodel-unsanctioned edge (Person uses Program directly).
			u.SetProp("middleName", string(rune('A'+rng.Intn(26))))
			if len(programs) > 0 {
				m.Connect("uses", u, programs[rng.Intn(len(programs))])
			}
		}
	}
	for i := 0; i < cfg.Docs; i++ {
		d := m.NewNode("Document")
		d.SetProp("label", fmt.Sprintf("Work Product %02d", i+1))
		if cfg.MissingVersionEvery <= 0 || i%cfg.MissingVersionEvery != cfg.MissingVersionEvery-1 {
			d.SetProp("version", fmt.Sprintf("%d.%d", 1+rng.Intn(3), rng.Intn(10)))
		}
		if len(systems) > 0 {
			m.Connect("documents", d, systems[rng.Intn(len(systems))])
		}
	}
	return m
}

// BuildGlassModel generates a small antique-glass catalog model.
func BuildGlassModel(seed int64) *awb.Model {
	rng := rand.New(rand.NewSource(seed))
	m := awb.NewModel(GlassMetamodel())
	makers := make([]*awb.Node, 3)
	for i := range makers {
		mk := m.NewNode("Maker")
		mk.SetProp("label", []string{"Tiffany Studios", "Lalique", "Galle"}[i])
		makers[i] = mk
	}
	kinds := []string{"Goblet", "Vase", "Paperweight"}
	periods := []string{"Art Nouveau", "Art Deco", "Victorian"}
	for i := 0; i < 9; i++ {
		p := m.NewNode(kinds[i%len(kinds)])
		p.SetProp("label", fmt.Sprintf("%s no. %d", kinds[i%len(kinds)], i+1))
		p.SetProp("period", periods[rng.Intn(len(periods))])
		p.SetProp("price", fmt.Sprintf("%d", 100+rng.Intn(900)))
		p.SetProp("notes", fmt.Sprintf("<p>Acquired lot <b>%d</b>.</p>", rng.Intn(50)))
		m.Connect("made-by", p, makers[rng.Intn(len(makers))])
	}
	c := m.NewNode("Customer")
	c.SetProp("label", "A Discerning Collector")
	for _, piece := range m.NodesOfType("Piece")[:3] {
		m.Connect("bought", c, piece)
	}
	m.Connect("admires", c, makers[0])
	return m
}
