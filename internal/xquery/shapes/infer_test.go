package shapes_test

import (
	"strings"
	"testing"

	"lopsided/internal/xquery/ast"
	"lopsided/internal/xquery/parser"
	"lopsided/internal/xquery/shapes"

	"lopsided/internal/xdm"
)

// inferBody parses a module (no optimization, so the AST is predictable)
// and returns the inferred info plus the body's shape.
func inferBody(t *testing.T, src string) (shapes.Shape, *shapes.Info, *ast.Module) {
	t.Helper()
	mod, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	info := shapes.InferModule(mod)
	sh, ok := info.Of(mod.Body)
	if !ok {
		t.Fatalf("no shape recorded for body of %q", src)
	}
	return sh, info, mod
}

func TestInferShapes(t *testing.T) {
	cases := []struct {
		src  string
		want string // Shape.String()
	}{
		{`42`, "{1 int nf tot}"},
		{`"a"`, "{1 str nf tot}"},
		{`1.5`, "{1 dec nf tot}"},
		{`1e0`, "{1 dbl nf tot}"},
		{`()`, "{0 () tot}"},
		{`(1, 2)`, "{+ int nf tot}"},
		{`(1, "a")`, "{+ int|str nf tot}"},
		{`1 + 2`, "{1 int nf tot}"},
		{`1 - 2.5`, "{1 dec nf tot}"},
		{`1 div 2`, "{1 dec nf}"},       // FOAR0001 possible
		{`1 div 2e0`, "{1 dbl nf tot}"}, // double path cannot raise
		{`1 idiv 2`, "{1 int nf}"},
		{`1 eq 2`, "{1 bool nf tot}"},
		{`"a" eq "b"`, "{1 bool nf tot}"},
		{`(1,2) = (3,4)`, "{1 bool nf tot}"},
		{`1 = "a" cast as xs:integer`, "{1 bool nf}"},
		{`if (1) then 2 else "x"`, "{1 int|str nf tot}"},
		{`if (1) then 2 else 3`, "{1 int nf tot}"},
		{`1 to 3`, "{+ int nf tot}"},
		{`3 to 1`, "{0 () tot}"},
		{`5 to 5`, "{1 int nf tot}"},
		{`for $x in (1,2,3) return $x + 1`, "{+ int nf tot}"},
		{`for $x in (1,2,3) where $x gt 1 return $x`, "{* int nf tot}"},
		{`let $x := 5 return $x * 2`, "{1 int nf tot}"},
		{`some $x in (1,2) satisfies $x eq 1`, "{1 bool nf tot}"},
		{`count(//a)`, "{1 int nf}"},
		{`concat("a", "b")`, "{1 str nf tot}"},
		{`string-length("abc")`, "{1 int nf tot}"},
		{`//item`, "{* node}"},
		{`exists(//a)`, "{1 bool nf}"}, // argument may raise (no focus)
		{`"x" cast as xs:string`, "{1 str nf tot}"},
		{`"x" cast as xs:integer`, "{1 int nf}"},
		{`3 cast as xs:integer`, "{1 int nf tot}"},
		{`"x" castable as xs:integer`, "{1 bool nf tot}"},
		{`5 instance of xs:integer`, "{1 bool nf tot}"},
		{`<a>{1}</a>`, "{1 node tot}"},
		{`<a>{//b}</a>`, "{1 node}"}, // content may hold attribute nodes
		{`(1,2,3)[2]`, "{* int nf}"},
		{`trace(1, "lbl")`, "{1 str nf tot}"}, // returns the LAST argument
		{`reverse((1,2))`, "{+ int nf tot}"},
		{`zero-or-one(5)`, "{1 int nf tot}"},
		{`data(<a>x</a>)`, "{1 untyped nf tot}"},
	}
	for _, c := range cases {
		sh, _, _ := inferBody(t, c.src)
		if got := sh.String(); got != c.want {
			t.Errorf("%s: inferred %s, want %s", c.src, got, c.want)
		}
	}
}

func TestInferUserFunctions(t *testing.T) {
	sh, _, _ := inferBody(t,
		`declare function local:f($x as xs:integer) as xs:integer { $x + 1 }; local:f(3)`)
	// The runtime enforces the declared return type, so the call is bounded
	// by it — but the body could raise, so never total.
	if got := sh.String(); got != "{1 int nf}" {
		t.Errorf("user call shape = %s", got)
	}
	// Undeclared return type: item()*.
	sh2, _, _ := inferBody(t, `declare function local:g() { 1 }; local:g()`)
	if sh2.Total || sh2.Occ != shapes.OccStar {
		t.Errorf("undeclared-return call shape = %s", sh2)
	}
}

func TestInferDiags(t *testing.T) {
	diagCases := []struct {
		src  string
		code string
	}{
		{`"a" + 1`, "XPTY0004"},
		{`1 + "a"`, "XPTY0004"},
		{`-"x"`, "XPTY0004"},
		{`"a" eq 1`, "XPTY0004"},
		{`("a","b") = (1,2)`, "XPTY0004"},
		{`() cast as xs:integer`, "XPTY0004"},
		{`1 + true()`, "XPTY0004"},
	}
	for _, c := range diagCases {
		_, info, _ := inferBody(t, c.src)
		d := info.FirstDiag()
		if d == nil {
			t.Errorf("%s: expected a %s diagnostic, got none", c.src, c.code)
			continue
		}
		if d.Code != c.code {
			t.Errorf("%s: diag code = %s, want %s", c.src, d.Code, c.code)
		}
		if d.P.Line == 0 {
			t.Errorf("%s: diagnostic lost its source span", c.src)
		}
	}
}

func TestInferNoDiagWhenUnsure(t *testing.T) {
	// Positions where the error is NOT inevitable, or where an earlier
	// must-eval expression might raise first, must stay silent.
	silent := []string{
		`if (//x) then "a" + 1 else 0`,             // branch: conditional
		`(1 div 0, "a" + 1)`,                       // earlier item may raise first
		`let $x := "a" return $x + 1`,              // FLWOR return is conditional
		`for $x in //a return "b" + 1`,             // return conditional on items
		`try { "a" + 1 } catch { 0 }`,              // caught at runtime
		`declare variable $g := 1 div 0; "a" + 1`,  // global evaluates first
		`declare function local:f() { "a" + 1 }; 1`, // function body never must
		`(//x)[1] + ()`,                            // empty operand: () result, no raise
		`"a" + //x`,                                // node operand may atomize to untyped
		`1 + "2.5" cast as xs:untypedAtomic`,       // untyped arithmetic is NaN, not an error
		`("a", "b")[1] = 1`,                        // predicate drops the lower bound
	}
	for _, src := range silent {
		_, info, _ := inferBody(t, src)
		if d := info.FirstDiag(); d != nil {
			t.Errorf("%s: unexpected diagnostic %s %q", src, d.Code, d.Msg)
		}
	}
}

func TestInferXPST0005Warning(t *testing.T) {
	_, info, _ := inferBody(t, `/a/@id/b`)
	found := false
	for _, w := range info.Warnings {
		if w.Code == "XPST0005" && strings.Contains(w.Msg, "statically empty") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected XPST0005 warning, got %v", info.Warnings)
	}
	sh, _, _ := inferBody(t, `/a/@id/b`)
	if sh.Occ != shapes.OccEmpty {
		t.Errorf("statically empty path shape = %s", sh)
	}
	// text() leaves too.
	_, info2, _ := inferBody(t, `/a/text()/b`)
	if len(info2.Warnings) == 0 {
		t.Errorf("text()/child should warn")
	}
	// self axis after an attribute is NOT statically empty.
	_, info3, _ := inferBody(t, `/a/@id/.`)
	for _, w := range info3.Warnings {
		t.Errorf("unexpected warning %q", w.Msg)
	}
}

func TestTotalExprProbe(t *testing.T) {
	probe := func(src string, sc shapes.Scope) bool {
		t.Helper()
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return shapes.TotalExpr(e, sc)
	}
	inScope := shapes.Scope{InScope: func(string) bool { return true }}
	noScope := shapes.Scope{InScope: func(string) bool { return false }}
	if !probe(`$x`, inScope) {
		t.Error("in-scope variable reference must be total")
	}
	if probe(`$x`, noScope) {
		t.Error("unknown variable must not be total")
	}
	if !probe(`1 + 2`, noScope) || !probe(`count($x)`, inScope) {
		t.Error("total expressions misjudged")
	}
	// concat's singleton checks can raise on an unbounded argument.
	if probe(`concat("a", $x)`, inScope) {
		t.Error("concat with an unbounded argument is not total")
	}
	if probe(`1 div 0`, noScope) || probe(`//a`, noScope) || probe(`position()`, noScope) {
		t.Error("raising expressions judged total")
	}
	// A user-shadowed built-in name must not borrow the built-in signature.
	shadow := shapes.Scope{IsUserFunc: func(name string) bool { return name == "true" }}
	if probe(`true()`, shadow) {
		t.Error("shadowed true() must not be total")
	}
	if !probe(`true()`, noScope) {
		t.Error("builtin true() is total")
	}
}

func TestSubsumes(t *testing.T) {
	st := func(kind xdm.ItemTestKind, name string, occ xdm.Occurrence) xdm.SequenceType {
		return xdm.SequenceType{Kind: kind, TypeName: name, Occurrence: occ}
	}
	oneInt := shapes.Shape{Occ: shapes.OccOne, Atomic: shapes.AInt, NodeFree: true, Total: true}
	optStr := shapes.Shape{Occ: shapes.OccOpt, Atomic: shapes.AStr, NodeFree: true}
	nodes := shapes.Shape{Occ: shapes.OccStar}

	if !shapes.Subsumes(oneInt, st(xdm.TestAtomic, "xs:integer", xdm.One)) {
		t.Error("1 int ⊑ xs:integer")
	}
	if !shapes.Subsumes(oneInt, st(xdm.TestAtomic, "xs:decimal", xdm.One)) {
		t.Error("integers match xs:decimal")
	}
	if !shapes.Subsumes(oneInt, st(xdm.TestAnyItem, xdm.One.String(), xdm.ZeroOrMore)) {
		t.Error("1 int ⊑ item()*")
	}
	if shapes.Subsumes(optStr, st(xdm.TestAtomic, "xs:string", xdm.One)) {
		t.Error("? does not fit exactly-one")
	}
	if !shapes.Subsumes(optStr, st(xdm.TestAtomic, "xs:string", xdm.Optional)) {
		t.Error("? str ⊑ xs:string?")
	}
	if shapes.Subsumes(oneInt, st(xdm.TestAtomic, "xs:string", xdm.One)) {
		t.Error("int does not match xs:string")
	}
	if !shapes.Subsumes(nodes, st(xdm.TestAnyNode, "", xdm.ZeroOrMore)) {
		t.Error("* node ⊑ node()*")
	}
	if shapes.Subsumes(nodes, st(xdm.TestElement, "", xdm.ZeroOrMore)) {
		t.Error("node kinds are not tracked; element() must not be assumed")
	}
}

func TestInferUpdateModule(t *testing.T) {
	um, err := parser.ParseUpdate(`for $x in //a where $x/@k return delete $x`)
	if err != nil {
		t.Fatal(err)
	}
	info := shapes.InferUpdateModule(um)
	if d := info.FirstDiag(); d != nil {
		t.Fatalf("update inference must never produce diagnostics, got %v", d)
	}
	fs := um.Stmts[0].(*ast.ForStmt)
	if sh, ok := info.Of(fs.In); !ok || sh.Occ != shapes.OccStar {
		t.Errorf("no shape for update for-clause input")
	}
}
