package server

// errors.go is the daemon's wire-level error contract: every non-2xx
// response — engine failure, admission rejection, bad request, even a
// contained panic — carries the same structured JSON body, and every
// rejection that is worth retrying carries both a Retry-After header and a
// machine-readable retry_after_ms. The chaos suite's core invariant ("no
// 5xx without a structured body, no rejection without retry advice") is
// enforced by routing every error through writeError.
//
// Server-originated errors get their own SRV* code namespace beside the
// engine's XP*/XQ*/FO*/LOPS* codes:
//
//	SRV0001  queue full               503, retryable
//	SRV0002  draining                 503, retryable (against another replica)
//	SRV0003  deadline too tight       503, retryable with a looser deadline
//	SRV0004  shed (degraded mode)     503, retryable
//	SRV0005  unknown collection       404
//	SRV0006  malformed request        400
//	SRV0007  reload failed            500, retryable
//	SRV0008  store not ready          503, retryable
//	SRV0009  contained handler panic  500
//	SRV0010  update target missing    422 (the update program ran but its
//	         target path names nothing in the collection tree; XUDY0027
//	         underneath)

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"lopsided/internal/cliutil"
	"lopsided/internal/xquery/interp"
)

// Server error codes (see the file comment for the table).
const (
	CodeQueueFull    = "SRV0001"
	CodeDraining     = "SRV0002"
	CodeDeadline     = "SRV0003"
	CodeShed         = "SRV0004"
	CodeNoCollection = "SRV0005"
	CodeBadRequest   = "SRV0006"
	CodeReloadFailed = "SRV0007"
	CodeNotReady     = "SRV0008"
	CodeHandlerPanic = "SRV0009"
	CodeNoTarget     = "SRV0010"
)

// ErrorBody is the JSON shape of every error response.
type ErrorBody struct {
	Error struct {
		// Code is an SRV* server code or an engine XQuery/LOPS code.
		Code string `json:"code"`
		// Message is the human-readable diagnostic.
		Message string `json:"message"`
		// Retryable reports whether the same request can reasonably be
		// retried (after retry_after_ms, when present).
		Retryable bool `json:"retryable"`
	} `json:"error"`
	// RetryAfterMs mirrors the Retry-After header with millisecond
	// precision; 0 when retrying is pointless.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// writeError emits the structured error response: JSON body always, plus a
// Retry-After header (in whole seconds, rounded up, minimum 1) whenever
// retryAfter > 0.
func writeError(w http.ResponseWriter, status int, code, msg string, retryable bool, retryAfter time.Duration) {
	var body ErrorBody
	body.Error.Code = code
	body.Error.Message = msg
	body.Error.Retryable = retryable
	if retryAfter > 0 {
		body.RetryAfterMs = retryAfter.Milliseconds()
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// engineErrorStatus maps an engine evaluation/compilation error onto an
// HTTP status via the cliutil exit-code taxonomy:
//
//	static (3)  → 400: the query itself is malformed
//	dynamic (4) → 422: the query ran and failed
//	limit (5)   → 408 for the wall-clock/cancellation budget (LOPS0001),
//	              422 for the other exhausted budgets (the request as
//	              posed cannot fit the server's resource policy)
//	other       → 500: contained panic or unclassified internal failure
func engineErrorStatus(err error) (status int, code string, retryable bool) {
	code = cliutil.Code(err)
	if code == "" {
		code = "LOPS0009"
	}
	switch cliutil.Classify(err) {
	case cliutil.ExitStatic:
		return http.StatusBadRequest, code, false
	case cliutil.ExitDynamic:
		return http.StatusUnprocessableEntity, code, false
	case cliutil.ExitLimit:
		if code == interp.CodeTimeout {
			// The evaluation was cut off by the tighter of the clamped
			// Limits.Timeout and the request context deadline; a retry
			// with a bigger budget (or on an idler server) can succeed.
			return http.StatusRequestTimeout, code, true
		}
		return http.StatusUnprocessableEntity, code, false
	default:
		return http.StatusInternalServerError, code, false
	}
}

// errorMessage renders err for the wire: the engine's structured one-line
// form without the tool prefix.
func errorMessage(err error) string {
	return strings.TrimPrefix(cliutil.Format("xqd", err), "xqd: ")
}
