package server

import (
	"context"
	"sync"
	"testing"
	"time"
)

func newTestAdmission(concurrent, queue int, maxWait time.Duration) (*admission, *Metrics) {
	m := &Metrics{}
	return newAdmission(concurrent, queue, maxWait, 10*time.Millisecond, m), m
}

func TestAdmissionFastPath(t *testing.T) {
	a, m := newTestAdmission(2, 4, time.Second)
	rel1, rej := a.Acquire(context.Background(), ClassInteractive)
	if rej != nil {
		t.Fatalf("rejected with free slots: %+v", rej)
	}
	rel2, rej := a.Acquire(context.Background(), ClassInteractive)
	if rej != nil {
		t.Fatalf("rejected with one slot left: %+v", rej)
	}
	if got := m.InFlight.Load(); got != 2 {
		t.Fatalf("in-flight gauge = %d, want 2", got)
	}
	rel1()
	rel2()
	if got := m.InFlight.Load(); got != 0 {
		t.Fatalf("in-flight gauge after release = %d, want 0", got)
	}
	if m.Queued.Load() != 0 {
		t.Fatal("fast-path admissions counted as queued")
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	a, m := newTestAdmission(1, 1, time.Second)
	relHold, rej := a.Acquire(context.Background(), ClassInteractive)
	if rej != nil {
		t.Fatal("first acquire rejected")
	}

	// One waiter fills the queue...
	var wg sync.WaitGroup
	wg.Add(1)
	waiterIn := make(chan struct{})
	go func() {
		defer wg.Done()
		close(waiterIn)
		rel, rej := a.Acquire(context.Background(), ClassInteractive)
		if rej != nil {
			t.Errorf("queued waiter rejected: %+v", rej)
			return
		}
		rel()
	}()
	<-waiterIn
	waitForQueueDepth(t, m, 1)

	// ...so the next request sheds as queue-full.
	_, rej = a.Acquire(context.Background(), ClassInteractive)
	if rej == nil || rej.Reason != RejectQueueFull {
		t.Fatalf("want queue-full rejection, got %+v", rej)
	}
	if rej.RetryAfter < time.Second {
		t.Fatalf("queue-full rejection without retry advice: %v", rej.RetryAfter)
	}
	if m.ShedQueueFull.Load() != 1 {
		t.Fatalf("shed counter = %d", m.ShedQueueFull.Load())
	}

	relHold() // let the waiter in
	wg.Wait()
}

func TestAdmissionDegradationLadderShedsBatchFirst(t *testing.T) {
	// Queue of 4 sheds batch past depth 2 but keeps admitting interactive.
	a, m := newTestAdmission(1, 4, 500*time.Millisecond)
	relHold, rej := a.Acquire(context.Background(), ClassInteractive)
	if rej != nil {
		t.Fatal("first acquire rejected")
	}

	// Fill the queue past the shed threshold with interactive waiters.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, rej := a.Acquire(context.Background(), ClassInteractive)
			if rej == nil {
				rel()
			}
		}()
	}
	waitForQueueDepth(t, m, 3)

	// Batch sheds at this depth; interactive still queues.
	_, rej = a.Acquire(context.Background(), ClassBatch)
	if rej == nil || rej.Reason != RejectDegraded {
		t.Fatalf("want degraded-mode batch shed, got %+v", rej)
	}
	if m.ShedDegraded.Load() != 1 {
		t.Fatalf("degraded counter = %d", m.ShedDegraded.Load())
	}

	relHold()
	wg.Wait()
}

func TestAdmissionDeadlineExpiresInQueue(t *testing.T) {
	a, m := newTestAdmission(1, 4, time.Minute)
	relHold, _ := a.Acquire(context.Background(), ClassInteractive)
	defer relHold()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, rej := a.Acquire(ctx, ClassInteractive)
	if rej == nil || rej.Reason != RejectDeadline {
		t.Fatalf("want deadline rejection, got %+v", rej)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline rejection took far longer than the deadline")
	}
	if m.ShedDeadline.Load() != 1 {
		t.Fatalf("deadline-shed counter = %d", m.ShedDeadline.Load())
	}
}

func TestAdmissionDeadlineTooTightRejectsBeforeQueueing(t *testing.T) {
	a, m := newTestAdmission(1, 4, time.Minute)
	// Teach the EWMA that evaluations take ~200ms.
	for i := 0; i < 10; i++ {
		a.observeLatency(200 * time.Millisecond)
	}
	relHold, _ := a.Acquire(context.Background(), ClassInteractive)
	defer relHold()

	// 10ms of deadline cannot survive a ~200ms estimated wait: the
	// rejection must be immediate (no queue slot consumed).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, rej := a.Acquire(ctx, ClassInteractive)
	if rej == nil || rej.Reason != RejectDeadline {
		t.Fatalf("want pre-queue deadline rejection, got %+v", rej)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("pre-queue rejection waited %v", elapsed)
	}
	if m.QueueDepth.Load() != 0 {
		t.Fatal("rejected request left the queue-depth gauge nonzero")
	}
}

func TestAdmissionWaitTimeout(t *testing.T) {
	a, m := newTestAdmission(1, 4, 20*time.Millisecond)
	relHold, _ := a.Acquire(context.Background(), ClassInteractive)
	defer relHold()

	_, rej := a.Acquire(context.Background(), ClassInteractive)
	if rej == nil || rej.Reason != RejectWaitTimeout {
		t.Fatalf("want wait-timeout rejection, got %+v", rej)
	}
	if m.ShedWaitTimeout.Load() != 1 {
		t.Fatalf("wait-timeout counter = %d", m.ShedWaitTimeout.Load())
	}
}

func TestAdmissionDrainingRejectsEverything(t *testing.T) {
	a, m := newTestAdmission(2, 4, time.Second)
	a.beginDrain()
	_, rej := a.Acquire(context.Background(), ClassInteractive)
	if rej == nil || rej.Reason != RejectDraining {
		t.Fatalf("want draining rejection, got %+v", rej)
	}
	if m.ShedDraining.Load() != 1 {
		t.Fatalf("draining counter = %d", m.ShedDraining.Load())
	}
}

func TestAdmissionDrainWakesQueuedWaiters(t *testing.T) {
	a, _ := newTestAdmission(1, 4, time.Minute)
	relHold, _ := a.Acquire(context.Background(), ClassInteractive)
	defer relHold()

	got := make(chan *Rejection, 1)
	go func() {
		_, rej := a.Acquire(context.Background(), ClassInteractive)
		got <- rej
	}()
	time.Sleep(10 * time.Millisecond)
	a.beginDrain()
	select {
	case rej := <-got:
		if rej == nil || rej.Reason != RejectDraining {
			t.Fatalf("queued waiter got %+v, want draining rejection", rej)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain did not wake the queued waiter")
	}
}

func waitForQueueDepth(t *testing.T, m *Metrics, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if m.QueueDepth.Load() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %d (at %d)", want, m.QueueDepth.Load())
}
