// Package xqgen is the document generator as the paper's team first built
// it: a program written in XQuery, executed on the lopsided engine, driven
// through the multi-phase INTERNAL-DATA pipeline. Package native is the
// rewrite that replaced it; the two must produce byte-identical results.
package xqgen

import (
	"fmt"
	"sync"
	"time"

	"lopsided/internal/awb"
	"lopsided/internal/docgen"
	"lopsided/internal/xdm"
	"lopsided/internal/xmltree"
	"lopsided/internal/xslt"
	"lopsided/xq"
)

// GenError is a fatal generation error surfaced from the XQuery program's
// <error gen-error="true"> convention.
type GenError struct {
	Message  string
	Location string // directive name, the <location> clue
	FocusID  string
}

// Error implements the error interface.
func (e *GenError) Error() string {
	s := "docgen(xquery): " + e.Message
	if e.Location != "" {
		s += " (while processing <" + e.Location + ">"
		if e.FocusID != "" {
			s += ", focus " + e.FocusID
		}
		s += ")"
	}
	return s
}

// Generator runs the XQuery document generator. Construct with New; the
// five phase programs compile once per generator.
type Generator struct {
	opts    []xq.Option
	once    sync.Once
	err     error
	phases  [5]*xq.Query
	sources [5]string
	// xsltSplit switches the final stream split from the host-language
	// helper to the paper's literal pipeline: "a little XSLT program could
	// split them apart".
	xsltSplit bool
	// slowThreshold/slowHook are the slow-query log: any phase whose
	// evaluation takes at least slowThreshold reports its stats to the hook.
	slowThreshold time.Duration
	slowHook      func(phase int, st xq.EvalStats)
}

// SlowQueryLog installs a slow-phase hook: after any phase evaluation whose
// wall time is at least threshold, hook is called with the 1-based phase
// number and that evaluation's full resource statistics. Installing a hook
// turns on per-phase stats collection; a nil hook turns the log off.
func (g *Generator) SlowQueryLog(threshold time.Duration, hook func(phase int, st xq.EvalStats)) {
	g.slowThreshold = threshold
	g.slowHook = hook
}

// UseXSLTSplitter selects how the phase-5 <SPLIT-OUTPUT> bundle is
// unbundled: false (default) uses the Go helper; true runs the two little
// XSLT programs from internal/xslt, as the paper's system actually did.
// Both must produce identical results.
func (g *Generator) UseXSLTSplitter(on bool) { g.xsltSplit = on }

// New returns an XQuery generator. Options are passed to the underlying
// engine (optimizer level, duplicate-attribute policy, tracer) — used by
// the ablation benchmarks.
func New(opts ...xq.Option) *Generator {
	return &Generator{opts: opts}
}

// Name implements docgen.Generator.
func (*Generator) Name() string { return "xquery" }

// PhaseSources exposes the embedded XQuery programs (for LoC accounting in
// the experiment harness).
func PhaseSources() []string {
	return []string{phase1Src, phase2Src, phase3Src, phase4Src, phase5Src}
}

func (g *Generator) compile() error {
	g.once.Do(func() {
		g.sources = [5]string{phase1Src, phase2Src, phase3Src, phase4Src, phase5Src}
		for i, src := range g.sources {
			q, err := xq.CompileCached(src, g.opts...)
			if err != nil {
				g.err = fmt.Errorf("xqgen: phase %d does not compile: %w", i+1, err)
				return
			}
			g.phases[i] = q
		}
	})
	return g.err
}

// GenerateMode implements docgen.Generator. Only FailFast is supported:
// the XQuery phases are pure functions whose only failure channel is the
// exception that aborts the whole evaluation — the paper's C1 asymmetry.
// There is no seam where a degraded run could note a problem and continue,
// so Accumulate returns docgen.ErrModeUnsupported.
func (g *Generator) GenerateMode(model *awb.Model, template *xmltree.Node, mode docgen.Mode) (*docgen.Result, error) {
	if mode != docgen.FailFast {
		return nil, fmt.Errorf("%w: the xquery generator cannot run in %s mode", docgen.ErrModeUnsupported, mode)
	}
	return g.Generate(model, template)
}

// Generate implements docgen.Generator.
func (g *Generator) Generate(model *awb.Model, template *xmltree.Node) (*docgen.Result, error) {
	if err := g.compile(); err != nil {
		return nil, err
	}
	modelDoc := model.ExportXML()
	tplDoc := template
	if tplDoc.Kind != xmltree.DocumentNode {
		tplDoc = xmltree.NewDocument()
		tplDoc.AppendChild(template.Clone())
	}
	vars := map[string]xq.Sequence{
		"model":    xq.Singleton(xq.NewNodeItem(modelDoc)),
		"template": xq.Singleton(xq.NewNodeItem(tplDoc)),
	}
	// Phase 1: generate, with INTERNAL-DATA plumbing.
	cur, err := g.runPhase(0, nil, vars)
	if err != nil {
		return nil, err
	}
	// Phases 2-4 re-copy the whole document each time — "fairly
	// inefficient, requiring multiple copies of the entire output".
	modelOnly := map[string]xq.Sequence{"model": vars["model"]}
	if cur, err = g.runPhase(1, cur, modelOnly); err != nil {
		return nil, err
	}
	if cur, err = g.runPhase(2, cur, nil); err != nil {
		return nil, err
	}
	if cur, err = g.runPhase(3, cur, nil); err != nil {
		return nil, err
	}
	split, err := g.runPhase(4, cur, nil)
	if err != nil {
		return nil, err
	}
	if g.xsltSplit {
		doc, problems, err := xslt.SplitStreams(split)
		if err != nil {
			return nil, fmt.Errorf("xqgen: XSLT splitter: %w", err)
		}
		return &docgen.Result{Document: doc, Problems: problems}, nil
	}
	return splitResult(split)
}

// runPhase evaluates one phase. ctxRoot, when non-nil, is the <GEN-ROOT>
// element from the previous phase, wrapped as the context document.
func (g *Generator) runPhase(i int, ctxRoot *xmltree.Node, vars map[string]xq.Sequence) (*xmltree.Node, error) {
	var ctx *xmltree.Node
	if ctxRoot != nil {
		ctx = xmltree.NewDocument()
		ctx.AppendChild(ctxRoot)
	}
	evalOpts := []xq.Option{xq.WithVars(vars)}
	var st xq.EvalStats
	if g.slowHook != nil {
		evalOpts = append(evalOpts, xq.WithStats(&st))
	}
	out, err := g.phases[i].Eval(nil, ctx, evalOpts...)
	if g.slowHook != nil && st.Wall >= g.slowThreshold {
		g.slowHook(i+1, st)
	}
	if err != nil {
		return nil, fmt.Errorf("xqgen: phase %d failed: %w", i+1, err)
	}
	if len(out) != 1 {
		return nil, fmt.Errorf("xqgen: phase %d returned %d items, want 1", i+1, len(out))
	}
	n, ok := xdm.IsNode(out[0])
	if !ok {
		return nil, fmt.Errorf("xqgen: phase %d returned a non-node", i+1)
	}
	if n.Kind == xmltree.ElementNode && n.Name == "error" && n.AttrOr("gen-error", "") == "true" {
		return nil, errorFromElement(n)
	}
	return n, nil
}

func errorFromElement(n *xmltree.Node) error {
	e := &GenError{}
	for _, c := range n.Children() {
		if c.Kind != xmltree.ElementNode {
			continue
		}
		switch c.Name {
		case "message":
			e.Message = c.StringValue()
		case "location":
			e.Location = c.StringValue()
		case "focus":
			e.FocusID = c.StringValue()
		}
	}
	return e
}

// splitResult unbundles the phase-5 <SPLIT-OUTPUT> into the two streams.
func splitResult(split *xmltree.Node) (*docgen.Result, error) {
	res := &docgen.Result{Document: xmltree.NewDocument()}
	for _, c := range split.Children() {
		if c.Kind != xmltree.ElementNode {
			continue
		}
		switch c.Name {
		case "document":
			for _, k := range c.Children() {
				res.Document.AppendChild(k.Clone())
			}
		case "problems":
			for _, p := range c.Children() {
				if p.Kind == xmltree.ElementNode && p.Name == "problem" {
					res.Problems = append(res.Problems, p.StringValue())
				}
			}
		}
	}
	return res, nil
}
