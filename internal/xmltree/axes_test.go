package xmltree

import (
	"strings"
	"testing"
)

// axesDoc builds the fixture:
//
//	<r>
//	  <a id="a"><aa/><ab><aba/></ab></a>
//	  <b id="b"/>
//	  <c id="c"><ca/></c>
//	</r>
func axesDoc() (*Node, map[string]*Node) {
	doc := MustParse(`<r><a id="a"><aa/><ab><aba/></ab></a><b id="b"/><c id="c"><ca/></c></r>`)
	byName := map[string]*Node{}
	Walk(doc, func(n *Node) bool {
		if n.Kind == ElementNode {
			byName[n.Name] = n
		}
		return true
	})
	byName["#doc"] = doc
	return doc, byName
}

func names(ns []*Node) string {
	var out []string
	for _, n := range ns {
		switch n.Kind {
		case ElementNode, AttributeNode:
			out = append(out, n.Name)
		case DocumentNode:
			out = append(out, "#doc")
		case TextNode:
			out = append(out, "#text")
		default:
			out = append(out, n.Kind.String())
		}
	}
	return strings.Join(out, " ")
}

func TestAxes(t *testing.T) {
	_, m := axesDoc()
	tests := []struct {
		axis string
		fn   func(*Node) []*Node
		from string
		want string
	}{
		{"child", ChildAxis, "r", "a b c"},
		{"child of leaf", ChildAxis, "aa", ""},
		{"attribute", AttributeAxis, "a", "id"},
		{"parent", ParentAxis, "ab", "a"},
		{"parent of root el", ParentAxis, "r", "#doc"},
		{"self", SelfAxis, "b", "b"},
		{"descendant", DescendantAxis, "a", "aa ab aba"},
		{"descendant-or-self", DescendantOrSelfAxis, "a", "a aa ab aba"},
		{"ancestor", AncestorAxis, "aba", "ab a r #doc"},
		{"ancestor-or-self", AncestorOrSelfAxis, "aba", "aba ab a r #doc"},
		{"following-sibling", FollowingSiblingAxis, "a", "b c"},
		{"following-sibling of last", FollowingSiblingAxis, "c", ""},
		{"preceding-sibling", PrecedingSiblingAxis, "c", "b a"},
		{"preceding-sibling of first", PrecedingSiblingAxis, "a", ""},
		{"following", FollowingAxis, "ab", "b c ca"},
		{"following from deep", FollowingAxis, "aba", "b c ca"},
		{"preceding", PrecedingAxis, "ca", "b aba ab aa a"},
		{"preceding from b", PrecedingAxis, "b", "aba ab aa a"},
	}
	for _, tt := range tests {
		t.Run(tt.axis, func(t *testing.T) {
			got := names(tt.fn(m[tt.from]))
			if got != tt.want {
				t.Errorf("%s(%s) = %q, want %q", tt.axis, tt.from, got, tt.want)
			}
		})
	}
}

func TestAxesOnNonContainers(t *testing.T) {
	txt := NewText("t")
	if ChildAxis(txt) != nil || AttributeAxis(txt) != nil {
		t.Fatal("text node should have no children/attrs")
	}
	if ParentAxis(txt) != nil {
		t.Fatal("parentless text should have no parent axis")
	}
}

func TestSiblingAxesOnAttributes(t *testing.T) {
	doc := MustParse(`<a x="1" y="2"/>`)
	x := doc.DocumentElement().AttrNode("x")
	if FollowingSiblingAxis(x) != nil || PrecedingSiblingAxis(x) != nil {
		t.Fatal("attributes have no siblings in XPath")
	}
}

func TestFollowingPrecedingExcludeAncestorsDescendants(t *testing.T) {
	_, m := axesDoc()
	for _, n := range FollowingAxis(m["a"]) {
		if n == m["aa"] || n == m["aba"] {
			t.Fatal("following axis included a descendant")
		}
	}
	for _, n := range PrecedingAxis(m["aba"]) {
		if n == m["ab"] || n == m["a"] || n == m["r"] {
			t.Fatal("preceding axis included an ancestor")
		}
	}
}
