package funclib

import (
	"math"
	"regexp"
	"strings"

	"lopsided/internal/xdm"
)

func registerStringFuncs() {
	register("string", 0, 1, func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args) == 0 {
			it, err := ctx.FocusItem()
			if err != nil {
				return nil, err
			}
			return singleton(xdm.String(it.StringValue()))
		}
		it, err := args[0].AtMostOne()
		if err != nil {
			return nil, err
		}
		if it == nil {
			return singleton(xdm.String(""))
		}
		return singleton(xdm.String(it.StringValue()))
	})

	register("concat", 2, -1, func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
		var b strings.Builder
		for _, a := range args {
			s, err := stringArg(a)
			if err != nil {
				return nil, err
			}
			// Repeated self-concatenation doubles output per call; charging
			// the bytes keeps string growth inside the sandbox budget.
			if err := chargeBytes(ctx, len(s)); err != nil {
				return nil, err
			}
			b.WriteString(s)
		}
		return singleton(xdm.String(b.String()))
	})

	register("string-join", 2, 2, func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
		sep, err := stringArg(args[1])
		if err != nil {
			return nil, err
		}
		parts := make([]string, len(args[0]))
		for i, it := range xdm.Atomize(args[0]) {
			parts[i] = it.StringValue()
			if err := chargeBytes(ctx, len(parts[i])+len(sep)); err != nil {
				return nil, err
			}
		}
		return singleton(xdm.String(strings.Join(parts, sep)))
	})

	// substring($s, $start[, $len]) with XPath's 1-based rounding semantics.
	register("substring", 2, 3, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		start, ok, err := numArg(args[1])
		if err != nil {
			return nil, err
		}
		if !ok {
			return singleton(xdm.String(""))
		}
		runes := []rune(s)
		n := float64(len(runes))
		from := math_round(start)
		to := n + 1
		if len(args) == 3 {
			length, ok, err := numArg(args[2])
			if err != nil {
				return nil, err
			}
			if !ok {
				return singleton(xdm.String(""))
			}
			to = from + math_round(length)
		}
		var b strings.Builder
		for i := 1.0; i <= n; i++ {
			if i >= from && i < to {
				b.WriteRune(runes[int(i)-1])
			}
		}
		return singleton(xdm.String(b.String()))
	})

	register("string-length", 0, 1, func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
		var s string
		if len(args) == 0 {
			it, err := ctx.FocusItem()
			if err != nil {
				return nil, err
			}
			s = it.StringValue()
		} else {
			var err error
			s, err = stringArg(args[0])
			if err != nil {
				return nil, err
			}
		}
		return singleton(xdm.Integer(len([]rune(s))))
	})

	register("normalize-space", 0, 1, func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
		var s string
		if len(args) == 0 {
			it, err := ctx.FocusItem()
			if err != nil {
				return nil, err
			}
			s = it.StringValue()
		} else {
			var err error
			s, err = stringArg(args[0])
			if err != nil {
				return nil, err
			}
		}
		return singleton(xdm.String(strings.Join(strings.Fields(s), " ")))
	})

	register("upper-case", 1, 1, strFunc1(strings.ToUpper))
	register("lower-case", 1, 1, strFunc1(strings.ToLower))

	register("translate", 3, 3, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		from, err := stringArg(args[1])
		if err != nil {
			return nil, err
		}
		to, err := stringArg(args[2])
		if err != nil {
			return nil, err
		}
		fromR, toR := []rune(from), []rune(to)
		var b strings.Builder
		for _, r := range s {
			idx := -1
			for i, fr := range fromR {
				if fr == r {
					idx = i
					break
				}
			}
			switch {
			case idx < 0:
				b.WriteRune(r)
			case idx < len(toR):
				b.WriteRune(toR[idx])
			}
		}
		return singleton(xdm.String(b.String()))
	})

	register("contains", 2, 2, strPred2(strings.Contains))
	register("starts-with", 2, 2, strPred2(strings.HasPrefix))
	register("ends-with", 2, 2, strPred2(strings.HasSuffix))

	register("substring-before", 2, 2, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		a, b, err := twoStrings(args)
		if err != nil {
			return nil, err
		}
		if i := strings.Index(a, b); i >= 0 && b != "" {
			return singleton(xdm.String(a[:i]))
		}
		return singleton(xdm.String(""))
	})
	register("substring-after", 2, 2, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		a, b, err := twoStrings(args)
		if err != nil {
			return nil, err
		}
		if i := strings.Index(a, b); i >= 0 && b != "" {
			return singleton(xdm.String(a[i+len(b):]))
		}
		return singleton(xdm.String(""))
	})

	register("compare", 2, 2, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		x, err := xdm.Atomize(args[0]).AtMostOne()
		if err != nil {
			return nil, err
		}
		y, err := xdm.Atomize(args[1]).AtMostOne()
		if err != nil {
			return nil, err
		}
		if x == nil || y == nil {
			return xdm.Empty, nil
		}
		return singleton(xdm.Integer(strings.Compare(x.StringValue(), y.StringValue())))
	})

	register("string-to-codepoints", 1, 1, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		var out xdm.Sequence
		for _, r := range s {
			out = append(out, xdm.Integer(r))
		}
		return out, nil
	})
	register("codepoints-to-string", 1, 1, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		var b strings.Builder
		for _, it := range xdm.Atomize(args[0]) {
			cp := xdm.NumberOf(it)
			b.WriteRune(rune(int32(cp)))
		}
		return singleton(xdm.String(b.String()))
	})

	// Regex functions use Go's RE2 syntax, a close cousin of the XML Schema
	// regex dialect for the patterns the generator used.
	register("matches", 2, 2, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, pat, err := twoStrings(args)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, xdm.Errf("FORX0002", "invalid regular expression %q: %v", pat, err)
		}
		return boolSeq(re.MatchString(s)), nil
	})
	register("replace", 3, 3, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		pat, err := stringArg(args[1])
		if err != nil {
			return nil, err
		}
		repl, err := stringArg(args[2])
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, xdm.Errf("FORX0002", "invalid regular expression %q: %v", pat, err)
		}
		// XPath uses $1; Go uses $1 too (with ${1} for disambiguation).
		return singleton(xdm.String(re.ReplaceAllString(s, repl)))
	})
	register("tokenize", 2, 2, func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, pat, err := twoStrings(args)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, xdm.Errf("FORX0002", "invalid regular expression %q: %v", pat, err)
		}
		if s == "" {
			return xdm.Empty, nil
		}
		var out xdm.Sequence
		for _, part := range re.Split(s, -1) {
			out = append(out, xdm.String(part))
		}
		return out, nil
	})
}

func strFunc1(f func(string) string) func(Context, []xdm.Sequence) (xdm.Sequence, error) {
	return func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		return singleton(xdm.String(f(s)))
	}
}

func strPred2(f func(string, string) bool) func(Context, []xdm.Sequence) (xdm.Sequence, error) {
	return func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		a, b, err := twoStrings(args)
		if err != nil {
			return nil, err
		}
		return boolSeq(f(a, b)), nil
	}
}

func twoStrings(args []xdm.Sequence) (string, string, error) {
	a, err := stringArg(args[0])
	if err != nil {
		return "", "", err
	}
	b, err := stringArg(args[1])
	if err != nil {
		return "", "", err
	}
	return a, b, nil
}

// math_round is XPath's round-half-toward-positive-infinity, used by
// fn:substring bounds. NaN propagates so all bound comparisons are false.
func math_round(f float64) float64 {
	if f != f {
		return f
	}
	return math.Floor(f + 0.5)
}
