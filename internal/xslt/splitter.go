package xslt

import (
	"fmt"

	"lopsided/internal/xmltree"
)

// The paper's multiple-output-streams workaround, verbatim in spirit:
// "the XQuery component could produce a big XML file with all the output
// streams as children of the root element, and a little XSLT program could
// split them apart — but by that time it seemed to be adding insult to
// injury."
//
// These are those little XSLT programs. SplitStreams runs one per stream.

// ExtractDocumentXSL pulls the document stream out of a SPLIT-OUTPUT bundle.
const ExtractDocumentXSL = `
<xsl:stylesheet version="1.0">
  <xsl:template match="/">
    <extracted>
      <xsl:copy-of select="/SPLIT-OUTPUT/document/node()"/>
    </extracted>
  </xsl:template>
</xsl:stylesheet>`

// ExtractProblemsXSL pulls the problems stream.
const ExtractProblemsXSL = `
<xsl:stylesheet version="1.0">
  <xsl:template match="/">
    <extracted>
      <xsl:for-each select="/SPLIT-OUTPUT/problems/problem">
        <problem><xsl:value-of select="string(.)"/></problem>
      </xsl:for-each>
    </extracted>
  </xsl:template>
</xsl:stylesheet>`

// SplitStreams splits a <SPLIT-OUTPUT> bundle into the document stream
// (as a new document node) and the problem strings, using the two little
// XSLT programs.
func SplitStreams(bundle *xmltree.Node) (*xmltree.Node, []string, error) {
	src := bundle
	if src.Kind != xmltree.DocumentNode {
		doc := xmltree.NewDocument()
		doc.AppendChild(src.Clone())
		src = doc
	}
	docSheet, err := CompileString(ExtractDocumentXSL)
	if err != nil {
		return nil, nil, fmt.Errorf("xslt: %w", err)
	}
	probSheet, err := CompileString(ExtractProblemsXSL)
	if err != nil {
		return nil, nil, fmt.Errorf("xslt: %w", err)
	}
	docOut, err := docSheet.Transform(src)
	if err != nil {
		return nil, nil, err
	}
	probOut, err := probSheet.Transform(src)
	if err != nil {
		return nil, nil, err
	}
	result := xmltree.NewDocument()
	if ex := docOut.DocumentElement(); ex != nil {
		for _, c := range ex.Children() {
			result.AppendChild(c.Clone())
		}
	}
	var problems []string
	if ex := probOut.DocumentElement(); ex != nil {
		for _, c := range ex.Children() {
			if c.Kind == xmltree.ElementNode && c.Name == "problem" {
				problems = append(problems, c.StringValue())
			}
		}
	}
	return result, problems, nil
}
