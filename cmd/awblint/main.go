// Command awblint validates an AWB model against its metamodel and prints
// the advisories — the command-line face of the Omissions machinery. AWB's
// philosophy holds: everything here is a recommendation; the exit code is
// non-zero only for unreadable input, never for a "bad" model.
//
//	awblint -model testdata/example-model.xml
//	awblint -demo -severity warning
package main

import (
	"flag"
	"fmt"
	"os"

	"lopsided/internal/awb"
	"lopsided/internal/cliutil"
	"lopsided/internal/workload"
)

func main() {
	modelFile := flag.String("model", "", "AWB model interchange XML")
	demo := flag.Bool("demo", false, "use the built-in demo model")
	severity := flag.String("severity", "info", "minimum severity to print: info | warning")
	flag.Parse()

	var model *awb.Model
	switch {
	case *demo:
		model = workload.BuildITModel(workload.Config{
			Seed: 42, Users: 10, Systems: 4, Docs: 6,
			MissingVersionEvery: 3, OverrideEvery: 3,
			OmitSystemBeingDesigned: true,
		})
	case *modelFile != "":
		data, err := os.ReadFile(*modelFile)
		if err != nil {
			fatal(err)
		}
		model, err = awb.ImportXML(string(data))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: awblint (-demo | -model m.xml) [-severity info|warning]")
		os.Exit(2)
	}

	min := awb.Info
	switch *severity {
	case "info":
	case "warning":
		min = awb.Warning
	default:
		fatal(fmt.Errorf("unknown severity %q", *severity))
	}

	stats := model.Stats()
	fmt.Printf("model %q: %d nodes, %d relations\n", model.Meta.Name, stats.Nodes, stats.Relations)
	count := 0
	for _, adv := range model.Validate() {
		if adv.Severity < min {
			continue
		}
		count++
		loc := ""
		if adv.NodeID != "" {
			loc = " [" + adv.NodeID + "]"
		}
		fmt.Printf("%-7s %-20s%s %s\n", adv.Severity, adv.Code, loc, adv.Message)
	}
	if count == 0 {
		fmt.Println("no advisories — the model even matches the metamodel's fond hopes")
	}
}

func fatal(err error) {
	os.Exit(cliutil.Report(os.Stderr, "awblint", err))
}
