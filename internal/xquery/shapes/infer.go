package shapes

// The inference pass proper: a forward walk over the optimized AST mirroring
// the closure compiler's evaluation order, flowing Shape facts through
// binders and recording a fact per expression node.
//
// Static diagnostics follow a must/unsure discipline. A diagnostic may only
// be reported for an expression that (a) definitely evaluates whenever the
// query body evaluates ("must" position) and (b) is not preceded, in
// evaluation order, by any must-position expression that might itself raise
// (the sticky `unsure` flag) — otherwise the compile-time error could
// preempt a different runtime error and the differential oracle would see a
// code change. Conditional positions (if/typeswitch branches, FLWOR returns,
// predicates, try bodies, function bodies, update statements) infer with
// must=false: full facts, no diagnostics.

import (
	"fmt"
	"strings"

	"lopsided/internal/xdm"
	"lopsided/internal/xquery/ast"
	"lopsided/internal/xquery/funclib"
)

// Diag is a compile-time error the inference proved inevitable: evaluating
// the module body must raise this code at this position.
type Diag struct {
	Code string
	Msg  string
	P    ast.Pos
}

// Warning is an advisory finding (e.g. a statically empty path step, the
// XPST0005 class) surfaced through EXPLAIN, never as an error.
type Warning struct {
	Code string
	Msg  string
	P    ast.Pos
}

// Info is the result of inference over a module: a shape per expression
// node plus any diagnostics and warnings.
type Info struct {
	shapes   map[ast.Expr]Shape
	Diags    []Diag
	Warnings []Warning
}

// Of returns the inferred shape for an expression node, if one was recorded.
func (in *Info) Of(e ast.Expr) (Shape, bool) {
	s, ok := in.shapes[e]
	return s, ok
}

// FirstDiag returns the first inevitable-error diagnostic, or nil.
func (in *Info) FirstDiag() *Diag {
	if len(in.Diags) == 0 {
		return nil
	}
	return &in.Diags[0]
}

// Scope supplies name-resolution callbacks for probe-mode inference
// (TotalExpr/InferExpr), where the caller — the optimizer — knows the
// lexical environment but no prolog is at hand.
type Scope struct {
	// InScope reports whether a variable name is bound in the surrounding
	// lexical environment (reading it cannot fail).
	InScope func(name string) bool
	// IsUserFunc reports whether any user function with this name (at any
	// arity) is declared; such calls never resolve to built-in signatures.
	IsUserFunc func(name string) bool
	// HasFocus promises a context item exists wherever the probed expression
	// evaluates (e.g. inside a step predicate), so a bare `.` cannot raise
	// XPDY0002. It says nothing about the item's kind: paths and focus
	// built-ins keep their usual conservative shapes.
	HasFocus bool
}

type analyzer struct {
	info    *Info
	frames  []map[string]Shape
	globals map[string]Shape
	funcs   map[string]*ast.FuncDecl // "name/arity" → decl
	sc      Scope
	// unsure is the sticky flag: a must-position expression that might
	// raise has been seen, so later diagnostics are suppressed.
	unsure bool
	// diags enables diagnostic/warning recording (module inference only).
	diags bool
}

func newAnalyzer() *analyzer {
	return &analyzer{
		info:    &Info{shapes: make(map[ast.Expr]Shape)},
		globals: make(map[string]Shape),
		funcs:   make(map[string]*ast.FuncDecl),
	}
}

func funcKey(name string, arity int) string {
	return fmt.Sprintf("%s/%d", name, arity)
}

// InferModule runs inference over a full (optimized) main module, returning
// per-expression shapes, inevitable-error diagnostics, and warnings.
func InferModule(mod *ast.Module) *Info {
	a := newAnalyzer()
	a.diags = true
	a.bindProlog(mod)
	if mod.Body != nil {
		a.infer(mod.Body, true)
	}
	return a.info
}

// InferUpdateModule runs inference over an update program. Update statements
// never receive diagnostics (the statement pipeline has its own oracle and
// error order); shapes serve EXPLAIN and check elision only.
func InferUpdateModule(um *ast.UpdateModule) *Info {
	a := newAnalyzer()
	if um.Prolog != nil {
		a.bindProlog(um.Prolog)
	}
	for _, st := range um.Stmts {
		a.inferStmt(st)
	}
	return a.info
}

// TotalExpr reports whether an expression provably cannot raise a non-limit
// error, resolving free variables and function names through sc. This is
// the optimizer's eliminability probe.
func TotalExpr(e ast.Expr, sc Scope) bool {
	a := newAnalyzer()
	a.sc = sc
	return a.infer(e, false).Total
}

// InferExpr infers a shape for a standalone expression with sc resolving
// free names; used by the access-path planner to vet predicates.
func InferExpr(e ast.Expr, sc Scope) Shape {
	a := newAnalyzer()
	a.sc = sc
	return a.infer(e, false)
}

// bindProlog seeds the function table, infers global variable values (in
// declaration order, matching evaluation), and analyzes function bodies.
func (a *analyzer) bindProlog(mod *ast.Module) {
	for _, f := range mod.Functions {
		a.funcs[funcKey(f.Name, len(f.Params))] = f
	}
	for _, v := range mod.Vars {
		if v.Val == nil {
			// External: the bound reference is total, the value unknown —
			// but a missing binding errors before the body runs, so the
			// body's diagnostics can no longer claim to fire first.
			a.globals[v.Name] = Shape{Occ: OccStar, Atomic: AAny, Total: true}
			a.unsure = true
			continue
		}
		sh := a.infer(v.Val, false)
		if !sh.Total {
			// Globals evaluate before the body; a raising global preempts
			// any body diagnostic.
			a.unsure = true
		}
		sh.Total = true // reading the already-computed binding cannot fail
		a.globals[v.Name] = sh
	}
	for _, f := range mod.Functions {
		frame := make(map[string]Shape, len(f.Params))
		for _, p := range f.Params {
			psh := shapeFromSeqType(p.Type)
			psh.Total = true
			frame[p.Name] = psh
		}
		a.frames = append(a.frames, frame)
		a.infer(f.Body, false)
		a.frames = a.frames[:len(a.frames)-1]
	}
}

func (a *analyzer) push(frame map[string]Shape) { a.frames = append(a.frames, frame) }
func (a *analyzer) pop()                        { a.frames = a.frames[:len(a.frames)-1] }

func (a *analyzer) lookupVar(name string) Shape {
	for i := len(a.frames) - 1; i >= 0; i-- {
		if sh, ok := a.frames[i][name]; ok {
			return sh
		}
	}
	if sh, ok := a.globals[name]; ok {
		return sh
	}
	if a.sc.InScope != nil && a.sc.InScope(name) {
		// Bound in the caller's environment: the read is total, the value
		// unknown.
		return Shape{Occ: OccStar, Atomic: AAny, Total: true}
	}
	return Shape{Occ: OccStar, Atomic: AAny}
}

func (a *analyzer) diag(must bool, code string, p ast.Pos, format string, args ...any) {
	if !a.diags || !must || a.unsure {
		return
	}
	a.info.Diags = append(a.info.Diags, Diag{Code: code, Msg: fmt.Sprintf(format, args...), P: p})
}

func (a *analyzer) warn(code string, p ast.Pos, format string, args ...any) {
	if !a.diags {
		return
	}
	a.info.Warnings = append(a.info.Warnings, Warning{Code: code, Msg: fmt.Sprintf(format, args...), P: p})
}

// infer computes and records the shape of e. must marks a position that
// definitely evaluates whenever the body evaluates; it both gates
// diagnostics and feeds the sticky unsure flag.
func (a *analyzer) infer(e ast.Expr, must bool) Shape {
	sh := a.inferRaw(e, must).norm()
	a.info.shapes[e] = sh
	if must && !sh.Total {
		a.unsure = true
	}
	return sh
}

func (a *analyzer) inferRaw(e ast.Expr, must bool) Shape {
	switch n := e.(type) {
	case *ast.StringLit:
		return one(AStr)
	case *ast.IntLit:
		return one(AInt)
	case *ast.DecimalLit:
		return one(ADec)
	case *ast.DoubleLit:
		return one(ADbl)
	case *ast.VarRef:
		return a.lookupVar(n.Name)
	case *ast.ContextItem:
		// One item when a focus exists; XPDY0002 when not — total only when
		// the caller vouches for the focus.
		return Shape{Occ: OccOne, Atomic: AAny, Total: a.sc.HasFocus}
	case *ast.EmptySeq:
		return emptyShape(true)
	case *ast.SequenceExpr:
		out := emptyShape(true)
		for _, it := range n.Items {
			out = Concat(out, a.infer(it, must))
		}
		return out
	case *ast.RangeExpr:
		return a.inferRange(n, must)
	case *ast.Unary:
		return a.inferUnary(n, must)
	case *ast.Binary:
		return a.inferBinary(n, must)
	case *ast.IfExpr:
		cond := a.infer(n.Cond, must)
		t := a.infer(n.Then, false)
		el := a.infer(n.Else, false)
		sh := Join(t, el)
		sh.Total = sh.Total && cond.Total && cond.ebvSafe()
		return sh
	case *ast.FLWOR:
		return a.inferFLWOR(n, must)
	case *ast.Quantified:
		return a.inferQuantified(n, must)
	case *ast.Typeswitch:
		return a.inferTypeswitch(n, must)
	case *ast.PathExpr:
		return a.inferPath(n, must)
	case *ast.FunctionCall:
		return a.inferCall(n, must)
	case *ast.InstanceOf:
		op := a.infer(n.Operand, must)
		return Shape{Occ: OccOne, Atomic: ABool, NodeFree: true, Total: op.Total}
	case *ast.CastableAs:
		// Cast failures — including the cardinality check — turn into
		// `false`, so castable is total whenever its operand is.
		op := a.infer(n.Operand, must)
		return Shape{Occ: OccOne, Atomic: ABool, NodeFree: true, Total: op.Total}
	case *ast.CastAs:
		return a.inferCast(n, must)
	case *ast.TreatAs:
		op := a.infer(n.Operand, must)
		sh := meet(op, shapeFromSeqType(n.Type))
		// XPDY0050 unless the operand's shape already proves the treat.
		sh.Total = op.Total && Subsumes(op, n.Type)
		return sh
	case *ast.TryCatch:
		t := a.infer(n.Try, false)
		frame := map[string]Shape{}
		if n.CatchVar != "" {
			frame[n.CatchVar] = one(AStr)
		}
		if n.CatchCodeVar != "" {
			frame[n.CatchCodeVar] = one(AStr)
		}
		a.push(frame)
		c := a.infer(n.Catch, false)
		a.pop()
		if t.Total {
			return t // the catch branch is dead
		}
		sh := Join(t, c)
		sh.Total = c.Total // a raising try lands in the (total) catch
		return sh
	case *ast.DirElem:
		return a.inferDirElem(n, must)
	case *ast.DirComment, *ast.DirPI:
		return Shape{Occ: OccOne, Total: true}
	case *ast.CompElem:
		total := n.NameExpr == nil
		if n.Content != nil {
			c := a.infer(n.Content, must)
			total = total && c.Total && c.NodeFree
		}
		return Shape{Occ: OccOne, Total: total}
	case *ast.CompAttr:
		total := n.NameExpr == nil
		if n.NameExpr != nil {
			a.infer(n.NameExpr, must)
		}
		if n.Content != nil {
			c := a.infer(n.Content, must)
			total = total && c.Total
		}
		return Shape{Occ: OccOne, Total: total}
	case *ast.CompText:
		c := a.infer(n.Content, must)
		// No text node materializes for empty content.
		lo := 0
		if c.Occ.Lo() >= 1 {
			lo = 1
		}
		return Shape{Occ: occFromBounds(lo, 1), Total: c.Total}
	case *ast.CompComment:
		a.infer(n.Content, must)
		return Shape{Occ: occFromBounds(0, 1)}
	case *ast.CompPI:
		if n.Content != nil {
			a.infer(n.Content, must)
		}
		return Shape{Occ: occFromBounds(0, 1)}
	case *ast.CompDoc:
		if n.Content != nil {
			a.infer(n.Content, must)
		}
		return Shape{Occ: OccOne}
	}
	return Unknown
}

func (a *analyzer) inferRange(n *ast.RangeExpr, must bool) Shape {
	a.infer(n.Lo, must)
	a.infer(n.Hi, must)
	if lo, ok := n.Lo.(*ast.IntLit); ok {
		if hi, ok2 := n.Hi.(*ast.IntLit); ok2 {
			switch {
			case lo.Value > hi.Value:
				return emptyShape(true)
			case hi.Value-lo.Value > 50_000_000:
				// FOAR0002 at runtime; bounds are vacuous.
				return Shape{Occ: OccStar, Atomic: AInt, NodeFree: true}
			case lo.Value == hi.Value:
				return one(AInt)
			default:
				return Shape{Occ: OccPlus, Atomic: AInt, NodeFree: true, Total: true}
			}
		}
	}
	// Non-literal bounds: the integer casts and the width guard can raise.
	return Shape{Occ: OccStar, Atomic: AInt, NodeFree: true}
}

func (a *analyzer) inferUnary(n *ast.Unary, must bool) Shape {
	op := a.infer(n.Operand, must)
	k := op.atomizedKind()
	if op.Total && op.Occ.Lo() >= 1 && op.NodeFree && op.Atomic != ANone && op.Atomic.Sub(AStr|ABool) {
		// A non-empty node-free string/boolean operand: a singleton raises
		// XPTY0004 from the operator, more than one from the cardinality
		// check — the same code either way.
		a.diag(must, "XPTY0004", n.P, "unary %s on a non-numeric operand", minusName(n.Minus))
	}
	out := Atom(0)
	if k&AInt != 0 {
		out |= AInt
	}
	if k&ADec != 0 {
		out |= ADec
	}
	if k&(ADbl|AUntyped) != 0 {
		out |= ADbl
	}
	if out == 0 {
		out = ANum
	}
	return Shape{
		Occ:      occFromBounds(min(op.Occ.Lo(), 1), min(op.Occ.Hi(), 1)),
		Atomic:   out,
		NodeFree: true,
		Total:    op.Total && op.bounded() && k.Sub(ANum|AUntyped),
	}
}

func minusName(minus bool) string {
	if minus {
		return "minus"
	}
	return "plus"
}

// famCount counts the comparison families — numeric, string, boolean —
// present in an atom set (untyped must be stripped by the caller).
func famCount(a Atom) int {
	n := 0
	if a&ANum != 0 {
		n++
	}
	if a&AStr != 0 {
		n++
	}
	if a&ABool != 0 {
		n++
	}
	return n
}

// compareSafe reports that xdm.CompareValue over any pair drawn from the
// two atomized kind sets cannot raise: untyped coerces to anything, and
// otherwise every pair must land in one family.
func compareSafe(kl, kr Atom) bool {
	l, r := kl&^AUntyped, kr&^AUntyped
	return l == 0 || r == 0 || famCount(l|r) <= 1
}

// compareDoomed reports that EVERY pair must raise XPTY0004: no untyped
// coercion possible and the families on the two sides are disjoint.
func compareDoomed(l, r Shape) bool {
	if !l.NodeFree || !r.NodeFree {
		return false
	}
	kl, kr := l.Atomic, r.Atomic
	if kl == 0 || kr == 0 || kl&AUntyped != 0 || kr&AUntyped != 0 {
		return false
	}
	famL := Atom(0)
	if kl&ANum != 0 {
		famL |= ANum
	}
	if kl&AStr != 0 {
		famL |= AStr
	}
	if kl&ABool != 0 {
		famL |= ABool
	}
	famR := Atom(0)
	if kr&ANum != 0 {
		famR |= ANum
	}
	if kr&AStr != 0 {
		famR |= AStr
	}
	if kr&ABool != 0 {
		famR |= ABool
	}
	return famL&famR == 0
}

func arithAtom(op xdm.ArithOp, kl, kr Atom) Atom {
	if op == xdm.OpIDiv {
		return AInt
	}
	var out Atom
	if (kl|kr)&(ADbl|AUntyped) != 0 {
		out |= ADbl
	}
	l, r := kl&(AInt|ADec), kr&(AInt|ADec)
	if l&AInt != 0 && r&AInt != 0 {
		if op == xdm.OpDiv {
			out |= ADec
		} else {
			out |= AInt
		}
	}
	if (l&ADec != 0 && r != 0) || (r&ADec != 0 && l != 0) {
		out |= ADec
	}
	if out == 0 {
		out = ANum
	}
	return out
}

func (a *analyzer) inferBinary(n *ast.Binary, must bool) Shape {
	switch n.Kind {
	case ast.OpOr, ast.OpAnd:
		l := a.infer(n.L, must)
		r := a.infer(n.R, false) // short-circuit: R is conditional
		return Shape{Occ: OccOne, Atomic: ABool, NodeFree: true,
			Total: l.Total && l.ebvSafe() && r.Total && r.ebvSafe()}
	}
	l := a.infer(n.L, must)
	r := a.infer(n.R, must)
	kl, kr := l.atomizedKind(), r.atomizedKind()
	switch n.Kind {
	case ast.OpGeneralComp:
		if l.Total && r.Total && l.Occ.Lo() >= 1 && r.Occ.Lo() >= 1 && compareDoomed(l, r) {
			a.diag(must, "XPTY0004", n.P, "comparison %s between %s and %s values", n.Cmp, l.Atomic, r.Atomic)
		}
		return Shape{Occ: OccOne, Atomic: ABool, NodeFree: true,
			Total: l.Total && r.Total && compareSafe(kl, kr)}
	case ast.OpValueComp:
		if l.Total && r.Total && l.Occ.Lo() >= 1 && r.Occ.Lo() >= 1 && compareDoomed(l, r) {
			// A one-item pair raises from the comparison, a longer operand
			// from its cardinality check — XPTY0004 either way.
			a.diag(must, "XPTY0004", n.P, "value comparison %s between %s and %s values", n.Cmp, l.Atomic, r.Atomic)
		}
		return Shape{
			Occ:      occFromBounds(min(l.Occ.Lo(), r.Occ.Lo()), min(min(l.Occ.Hi(), r.Occ.Hi()), 1)),
			Atomic:   ABool,
			NodeFree: true,
			Total:    l.Total && r.Total && l.bounded() && r.bounded() && compareSafe(kl, kr),
		}
	case ast.OpNodeIs, ast.OpNodeBefore, ast.OpNodeAfter:
		return Shape{
			Occ:      occFromBounds(l.Occ.Lo()*r.Occ.Lo(), min(min(l.Occ.Hi(), r.Occ.Hi()), 1)),
			Atomic:   ABool,
			NodeFree: true,
			Total: l.Total && r.Total && l.bounded() && r.bounded() &&
				l.Atomic == ANone && r.Atomic == ANone,
		}
	case ast.OpArith:
		doomedL := l.NodeFree && l.Atomic != ANone && l.Atomic.Sub(AStr|ABool)
		doomedR := r.NodeFree && r.Atomic != ANone && r.Atomic.Sub(AStr|ABool)
		if l.Total && r.Total && l.Occ.Lo() >= 1 && r.Occ.Lo() >= 1 && (doomedL || doomedR) {
			a.diag(must, "XPTY0004", n.P, "arithmetic operator %s on a non-numeric operand", n.Arith)
		}
		numSafe := kl.Sub(ANum|AUntyped) && kr.Sub(ANum|AUntyped)
		divSafe := true
		switch n.Arith {
		case xdm.OpDiv, xdm.OpMod:
			// Division by zero raises only off the double path; an operand
			// that always promotes to double (doubles and untypeds) is safe.
			divSafe = kl == 0 || kr == 0 || kl.Sub(ADbl|AUntyped) || kr.Sub(ADbl|AUntyped)
		case xdm.OpIDiv:
			divSafe = kl == 0 || kr == 0 // only vacuously safe
		}
		return Shape{
			Occ:      occFromBounds(l.Occ.Lo()*r.Occ.Lo(), min(min(l.Occ.Hi(), r.Occ.Hi()), 1)),
			Atomic:   arithAtom(n.Arith, kl, kr),
			NodeFree: true,
			Total:    l.Total && r.Total && l.bounded() && r.bounded() && numSafe && divSafe,
		}
	case ast.OpUnion:
		return Shape{
			Occ:   occFromBounds(max(l.Occ.Lo(), r.Occ.Lo()), min(l.Occ.Hi()+r.Occ.Hi(), 2)),
			Total: l.Total && r.Total && l.allNodes() && r.allNodes(),
		}
	case ast.OpIntersect:
		return Shape{
			Occ:   occFromBounds(0, min(l.Occ.Hi(), r.Occ.Hi())),
			Total: l.Total && r.Total && l.allNodes() && r.allNodes(),
		}
	case ast.OpExcept:
		return Shape{
			Occ:   occFromBounds(0, l.Occ.Hi()),
			Total: l.Total && r.Total && l.allNodes() && r.allNodes(),
		}
	}
	// OpConcat (||) is parsed but unsupported: XQST0031 after the operands.
	return Unknown
}

func (a *analyzer) inferFLWOR(n *ast.FLWOR, must bool) Shape {
	clauseMust := must
	mult := OccOne
	total := true
	pushed := 0
	for _, cl := range n.Clauses {
		switch c := cl.(type) {
		case ast.ForClause:
			in := a.infer(c.In, clauseMust)
			frame := map[string]Shape{
				c.Var: {Occ: OccOne, Atomic: in.Atomic, NodeFree: in.NodeFree, Total: true},
			}
			if c.PosVar != "" {
				frame[c.PosVar] = one(AInt)
			}
			a.push(frame)
			pushed++
			mult = mult.Product(in.Occ)
			total = total && in.Total
			if in.Occ.Lo() == 0 {
				// An empty range skips every later clause.
				clauseMust = false
			}
		case ast.LetClause:
			v := a.infer(c.Val, clauseMust)
			bound := v
			bound.Total = true
			a.push(map[string]Shape{c.Var: bound})
			pushed++
			total = total && v.Total
		}
	}
	if n.Where != nil {
		w := a.infer(n.Where, false)
		total = total && w.Total && w.ebvSafe()
	}
	for _, spec := range n.OrderBy {
		a.infer(spec.Key, false)
	}
	if len(n.OrderBy) > 0 {
		// Order keys are compared pairwise across rows; mixed-type or
		// multi-item keys raise, which per-key shapes cannot rule out.
		total = false
	}
	ret := a.infer(n.Return, false)
	for ; pushed > 0; pushed-- {
		a.pop()
	}
	occ := mult.Product(ret.Occ)
	if n.Where != nil {
		occ = occFromBounds(0, occ.Hi())
	}
	return Shape{Occ: occ, Atomic: ret.Atomic, NodeFree: ret.NodeFree, Total: total && ret.Total}
}

func (a *analyzer) inferQuantified(n *ast.Quantified, must bool) Shape {
	clauseMust := must
	total := true
	for _, v := range n.Vars {
		in := a.infer(v.In, clauseMust)
		a.push(map[string]Shape{
			v.Var: {Occ: OccOne, Atomic: in.Atomic, NodeFree: in.NodeFree, Total: true},
		})
		total = total && in.Total
		if in.Occ.Lo() == 0 {
			clauseMust = false
		}
	}
	sat := a.infer(n.Satisfy, false)
	for range n.Vars {
		a.pop()
	}
	return Shape{Occ: OccOne, Atomic: ABool, NodeFree: true,
		Total: total && sat.Total && sat.ebvSafe()}
}

func (a *analyzer) inferTypeswitch(n *ast.Typeswitch, must bool) Shape {
	op := a.infer(n.Operand, must)
	var out Shape
	first := true
	join := func(s Shape) {
		if first {
			out, first = s, false
		} else {
			out = Join(out, s)
		}
	}
	for _, cs := range n.Cases {
		frame := map[string]Shape{}
		if cs.Var != "" {
			bound := meet(op, shapeFromSeqType(cs.Type))
			bound.Total = true
			frame[cs.Var] = bound
		}
		a.push(frame)
		join(a.infer(cs.Ret, false))
		a.pop()
	}
	frame := map[string]Shape{}
	if n.DefaultVar != "" {
		bound := op
		bound.Total = true
		frame[n.DefaultVar] = bound
	}
	a.push(frame)
	join(a.infer(n.Default, false))
	a.pop()
	out.Total = out.Total && op.Total
	return out
}

func (a *analyzer) inferPath(n *ast.PathExpr, must bool) Shape {
	// A lone unrooted filter step is a standalone filter expression: the
	// primary's value, narrowed by predicates.
	if n.Root == ast.RootNone && len(n.Steps) == 1 && n.Steps[0].Primary != nil {
		st := n.Steps[0]
		p := a.infer(st.Primary, must)
		for _, pr := range st.Preds {
			a.infer(pr, false)
		}
		if len(st.Preds) == 0 {
			return p
		}
		return Shape{Occ: occFromBounds(0, p.Occ.Hi()), Atomic: p.Atomic, NodeFree: p.NodeFree}
	}
	empty := false
	leaf := false // the previous step can only yield childless, attribute-less nodes
	for _, st := range n.Steps {
		if st.Primary != nil {
			a.infer(st.Primary, false)
			leaf = false
		} else {
			if leaf && (st.Axis == ast.AxisChild || st.Axis == ast.AxisDescendant || st.Axis == ast.AxisAttribute) && !empty {
				a.warn("XPST0005", st.P, "step %s::%s is statically empty: the previous step yields only leaf nodes", st.Axis, testName(st.Test))
				empty = true
			}
			leaf = st.Axis == ast.AxisAttribute || (st.Test.Kind != nil && leafKind(st.Test.Kind.Kind))
		}
		for _, pr := range st.Preds {
			a.infer(pr, false)
		}
	}
	if empty {
		// Statically (): earlier steps can still raise (non-node context),
		// so the bound is empty-on-success, never total.
		return Shape{Occ: OccEmpty, NodeFree: true}
	}
	if len(n.Steps) == 0 {
		// A lone "/": the context root — one node when the focus is a tree.
		return Shape{Occ: OccOne}
	}
	if last := n.Steps[len(n.Steps)-1]; last.Primary != nil {
		if p, ok := a.info.Of(last.Primary); ok {
			return Shape{Occ: OccStar, Atomic: p.Atomic, NodeFree: p.NodeFree}
		}
	}
	return Shape{Occ: OccStar}
}

func leafKind(k xdm.ItemTestKind) bool {
	switch k {
	case xdm.TestText, xdm.TestComment, xdm.TestPI:
		return true
	}
	return false
}

func testName(t ast.NodeTest) string {
	if t.Kind != nil {
		return t.Kind.String()
	}
	return t.Name
}

func (a *analyzer) inferCall(n *ast.FunctionCall, must bool) Shape {
	argShapes := make([]Shape, len(n.Args))
	for i, arg := range n.Args {
		argShapes[i] = a.infer(arg, must)
	}
	// Resolution mirrors interp.compileCall: user functions by exact
	// name+arity first; a user name at the wrong arity falls through to the
	// built-in table.
	if f, ok := a.funcs[funcKey(n.Name, len(n.Args))]; ok {
		// The runtime enforces the declared return type (XPTY0004 on
		// mismatch), so the declaration is a sound success-shape bound.
		sh := shapeFromSeqType(f.Ret)
		sh.Total = false
		return sh
	}
	if a.sc.IsUserFunc != nil && a.sc.IsUserFunc(n.Name) {
		// Probe mode knows user names but not arities: assume nothing.
		return Shape{Occ: OccStar, Atomic: AAny}
	}
	sig, ok := funclib.Signature(n.Name, len(n.Args))
	if !ok {
		return Shape{Occ: OccStar, Atomic: AAny} // XPST0017 at call time
	}
	argsTotal := true
	argsBounded := true
	for _, s := range argShapes {
		argsTotal = argsTotal && s.Total
		argsBounded = argsBounded && s.bounded()
	}
	// Built-ins whose result mirrors an argument.
	switch strings.TrimPrefix(n.Name, "fn:") {
	case "data":
		if len(argShapes) == 1 {
			a0 := argShapes[0]
			return Shape{Occ: a0.Occ, Atomic: a0.atomizedKind(), NodeFree: true, Total: a0.Total}
		}
	case "reverse":
		if len(argShapes) == 1 {
			return argShapes[0]
		}
	case "zero-or-one":
		if len(argShapes) == 1 {
			a0 := argShapes[0]
			return Shape{Occ: occFromBounds(min(a0.Occ.Lo(), 1), min(a0.Occ.Hi(), 1)),
				Atomic: a0.Atomic, NodeFree: a0.NodeFree, Total: a0.Total && a0.bounded()}
		}
	case "one-or-more":
		if len(argShapes) == 1 {
			a0 := argShapes[0]
			return Shape{Occ: occFromBounds(max(a0.Occ.Lo(), 1), a0.Occ.Hi()),
				Atomic: a0.Atomic, NodeFree: a0.NodeFree, Total: a0.Total && a0.Occ.Lo() >= 1}
		}
	case "exactly-one":
		if len(argShapes) == 1 {
			a0 := argShapes[0]
			return Shape{Occ: OccOne, Atomic: a0.Atomic, NodeFree: a0.NodeFree,
				Total: a0.Total && a0.Occ == OccOne}
		}
	case "subsequence":
		if len(argShapes) >= 2 {
			a0 := argShapes[0]
			numsBounded := true
			for _, s := range argShapes[1:] {
				numsBounded = numsBounded && s.bounded()
			}
			return Shape{Occ: occFromBounds(0, a0.Occ.Hi()), Atomic: a0.Atomic,
				NodeFree: a0.NodeFree, Total: argsTotal && numsBounded}
		}
	case "trace":
		// Returns its last argument (the Galax behavior); formatting the
		// traced values cannot raise.
		if len(argShapes) >= 1 {
			last := argShapes[len(argShapes)-1]
			last.Total = argsTotal
			return last
		}
	}
	total := sig.Total || (sig.TotalIfBounded && argsBounded)
	return Shape{
		Occ:      occFromSig(sig.Occ),
		Atomic:   atomFromName(sig.Atomic),
		NodeFree: sig.NodeFree,
		Total:    total && argsTotal,
	}
}

func (a *analyzer) inferCast(n *ast.CastAs, must bool) Shape {
	op := a.infer(n.Operand, must)
	if !n.Optional && op.Total && op.Occ == OccEmpty {
		a.diag(must, "XPTY0004", n.P, "cast of empty sequence to non-optional %s", n.TypeName)
	}
	occ := OccOne
	if n.Optional {
		occ = occFromBounds(min(op.Occ.Lo(), 1), min(max(op.Occ.Hi(), 1), 1))
		if op.Occ == OccEmpty {
			occ = OccEmpty
		}
	}
	total := op.Total && op.bounded() && castSafe(n.TypeName, op.atomizedKind()) &&
		(n.Optional || op.Occ.Lo() >= 1)
	return Shape{Occ: occ, Atomic: atomFromTypeName(n.TypeName), NodeFree: true, Total: total}
}

// castSafe reports xdm.CastTo cannot fail for any source item drawn from
// the atomized kind set. kinds==0 means the operand is statically empty and
// the cast body never runs.
func castSafe(typeName string, kinds Atom) bool {
	if kinds == 0 {
		return true
	}
	switch typeName {
	case "xs:string", "xs:untypedAtomic", "xdt:untypedAtomic":
		return true
	case "xs:boolean":
		return kinds.Sub(ANum | ABool)
	case "xs:integer", "xs:int", "xs:long":
		return kinds.Sub(AInt | ADec | ABool)
	case "xs:decimal":
		return kinds.Sub(AInt | ADec)
	case "xs:double", "xs:float":
		return kinds.Sub(ANum)
	}
	return false
}

func (a *analyzer) inferDirElem(n *ast.DirElem, must bool) Shape {
	total := true
	for _, attr := range n.Attrs {
		for _, part := range attr.Parts {
			p := a.infer(part, must)
			total = total && p.Total
		}
	}
	for _, c := range n.Content {
		cs := a.infer(c, must)
		// Non-node-free content can hold attribute nodes, whose placement
		// after content raises XQTY0024 at construction time.
		total = total && cs.Total && cs.NodeFree
	}
	return Shape{Occ: OccOne, Total: total}
}

// ---- update statements ----

func (a *analyzer) inferStmt(st ast.UpdateStmt) {
	switch s := st.(type) {
	case *ast.InsertStmt:
		a.infer(s.Source, false)
		a.infer(s.Target, false)
	case *ast.DeleteStmt:
		a.infer(s.Target, false)
	case *ast.ReplaceStmt:
		a.infer(s.Target, false)
		a.infer(s.Source, false)
	case *ast.RenameStmt:
		a.infer(s.Target, false)
		a.infer(s.Name, false)
	case *ast.ForStmt:
		in := a.infer(s.In, false)
		a.push(map[string]Shape{
			s.Var: {Occ: OccOne, Atomic: in.Atomic, NodeFree: in.NodeFree, Total: true},
		})
		if s.Where != nil {
			a.infer(s.Where, false)
		}
		for _, b := range s.Body {
			a.inferStmt(b)
		}
		a.pop()
	case *ast.BlockStmt:
		for _, b := range s.Stmts {
			a.inferStmt(b)
		}
	}
}

// ---- sequence types ----

// shapeFromSeqType bounds the values matching a declared sequence type.
// Sound because the runtime enforces declarations (parameter and return
// checks): a value that flowed past the check matches the type.
func shapeFromSeqType(t xdm.SequenceType) Shape {
	var item Shape
	switch t.Kind {
	case xdm.TestAnyItem:
		item = Shape{Atomic: AAny}
	case xdm.TestAtomic:
		item = Shape{Atomic: atomsMatching(t.TypeName), NodeFree: true}
	case xdm.TestEmptySequence:
		return emptyShape(false)
	default:
		item = Shape{Atomic: ANone} // node tests
	}
	item.Occ = occFromXdm(t.Occurrence)
	return item.norm()
}

func occFromXdm(o xdm.Occurrence) Occ {
	switch o {
	case xdm.One:
		return OccOne
	case xdm.Optional:
		return OccOpt
	case xdm.OneOrMore:
		return OccPlus
	}
	return OccStar
}

func occFromSig(o funclib.SigOcc) Occ {
	switch o {
	case funclib.SigOccEmpty:
		return OccEmpty
	case funclib.SigOccOne:
		return OccOne
	case funclib.SigOccOpt:
		return OccOpt
	case funclib.SigOccPlus:
		return OccPlus
	}
	return OccStar
}

// atomsMatching over-approximates the atomic values matching a named
// atomic type (the shape of a value that PASSED the test).
func atomsMatching(typeName string) Atom {
	switch typeName {
	case "xs:anyAtomicType", "xdt:anyAtomicType":
		return AAny
	case "xs:string":
		return AStr
	case "xs:boolean":
		return ABool
	case "xs:integer", "xs:int", "xs:long", "xs:nonNegativeInteger", "xs:positiveInteger":
		return AInt
	case "xs:decimal":
		return AInt | ADec
	case "xs:double", "xs:float":
		return ADbl
	case "xs:numeric":
		return ANum
	case "xs:untypedAtomic", "xdt:untypedAtomic":
		return AUntyped
	}
	return AAny
}

// atomsSubsumedBy under-approximates: the kinds every value of which is
// GUARANTEED to match the named atomic type.
func atomsSubsumedBy(typeName string) Atom {
	switch typeName {
	case "xs:anyAtomicType", "xdt:anyAtomicType":
		return AAny
	case "xs:string":
		return AStr
	case "xs:boolean":
		return ABool
	case "xs:integer", "xs:int", "xs:long":
		return AInt
	case "xs:decimal":
		return AInt | ADec
	case "xs:double", "xs:float":
		return ADbl
	case "xs:numeric":
		return ANum
	case "xs:untypedAtomic", "xdt:untypedAtomic":
		return AUntyped
	}
	return ANone
}

// atomFromTypeName bounds the result kind of a cast to the named type.
func atomFromTypeName(typeName string) Atom {
	switch typeName {
	case "xs:string":
		return AStr
	case "xs:boolean":
		return ABool
	case "xs:integer", "xs:int", "xs:long", "xs:nonNegativeInteger", "xs:positiveInteger":
		return AInt
	case "xs:decimal":
		return ADec
	case "xs:double", "xs:float":
		return ADbl
	case "xs:untypedAtomic", "xdt:untypedAtomic":
		return AUntyped
	}
	return AAny
}

// atomFromName maps a funclib.Sig atomic-bound name to the bitset.
func atomFromName(name string) Atom {
	switch name {
	case "":
		return ANone
	case "integer":
		return AInt
	case "decimal":
		return ADec
	case "double":
		return ADbl
	case "numeric":
		return ANum
	case "boolean":
		return ABool
	case "string":
		return AStr
	case "untyped":
		return AUntyped
	}
	return AAny
}

// meet intersects two upper bounds (used when a value is known to satisfy
// both, e.g. a typeswitch case binding).
func meet(a, b Shape) Shape {
	lo := max(a.Occ.Lo(), b.Occ.Lo())
	hi := min(a.Occ.Hi(), b.Occ.Hi())
	if hi < lo {
		// Jointly unsatisfiable: the value cannot exist, so any bound is
		// vacuous; Empty keeps downstream math sane.
		return emptyShape(a.Total && b.Total)
	}
	return Shape{
		Occ:      occFromBounds(lo, hi),
		Atomic:   a.Atomic & b.Atomic,
		NodeFree: a.NodeFree || b.NodeFree,
		Total:    a.Total && b.Total,
	}.norm()
}

// Subsumes reports that EVERY value admitted by the shape matches the
// sequence type, so a runtime Matches check against it must pass.
func Subsumes(s Shape, t xdm.SequenceType) bool {
	if t.Kind == xdm.TestEmptySequence {
		return s.Occ == OccEmpty
	}
	if !s.Occ.Sub(occFromXdm(t.Occurrence)) {
		return false
	}
	switch t.Kind {
	case xdm.TestAnyItem:
		return true
	case xdm.TestAtomic:
		return s.NodeFree && s.Atomic.Sub(atomsSubsumedBy(t.TypeName))
	case xdm.TestAnyNode:
		return s.Atomic == ANone
	}
	return false
}
