package xslt

import (
	"strings"
	"testing"

	"lopsided/internal/xmltree"
)

func transform(t *testing.T, sheetSrc, docSrc string) string {
	t.Helper()
	sheet, err := CompileString(sheetSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	doc := xmltree.MustParse(docSrc)
	out, err := sheet.Transform(doc)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	return out.String()
}

func TestIdentityViaBuiltins(t *testing.T) {
	// With no matching templates, built-in rules recurse and copy text.
	got := transform(t, `<xsl:stylesheet version="1.0"/>`, `<a>hi <b>there</b></a>`)
	if got != "hi there" {
		t.Fatalf("built-ins: %q", got)
	}
}

func TestTemplateMatchAndValueOf(t *testing.T) {
	sheet := `<xsl:stylesheet version="1.0">
	  <xsl:template match="/">
	    <out><xsl:apply-templates select="/lib/book"/></out>
	  </xsl:template>
	  <xsl:template match="book">
	    <title y="{string(@year)}"><xsl:value-of select="string(title)"/></title>
	  </xsl:template>
	</xsl:stylesheet>`
	got := transform(t, sheet, `<lib><book year="1983"><title>LL</title></book><book year="2004"><title>XQ</title></book></lib>`)
	want := `<out><title y="1983">LL</title><title y="2004">XQ</title></out>`
	if got != want {
		t.Fatalf("got %s", got)
	}
}

func TestForEachIfChoose(t *testing.T) {
	sheet := `<xsl:stylesheet version="1.0">
	  <xsl:template match="/">
	    <r><xsl:for-each select="//n">
	      <xsl:choose>
	        <xsl:when test="number(string(.)) > 5"><big><xsl:value-of select="string(.)"/></big></xsl:when>
	        <xsl:otherwise><small/></xsl:otherwise>
	      </xsl:choose>
	      <xsl:if test="string(.) = '9'"><nine/></xsl:if>
	    </xsl:for-each></r>
	  </xsl:template>
	</xsl:stylesheet>`
	got := transform(t, sheet, `<d><n>3</n><n>9</n></d>`)
	want := `<r><small/><big>9</big><nine/></r>`
	if got != want {
		t.Fatalf("got %s", got)
	}
}

func TestCopyOfAndElementAttribute(t *testing.T) {
	sheet := `<xsl:stylesheet version="1.0">
	  <xsl:template match="/">
	    <xsl:element name="made-{string(/d/@kind)}">
	      <xsl:attribute name="n"><xsl:value-of select="count(//x)"/></xsl:attribute>
	      <xsl:copy-of select="//x"/>
	      <xsl:text>done</xsl:text>
	    </xsl:element>
	  </xsl:template>
	</xsl:stylesheet>`
	got := transform(t, sheet, `<d kind="box"><x i="1"/><x i="2"/></d>`)
	want := `<made-box n="2"><x i="1"/><x i="2"/>done</made-box>`
	if got != want {
		t.Fatalf("got %s", got)
	}
}

func TestPriorityAndSpecificity(t *testing.T) {
	sheet := `<xsl:stylesheet version="1.0">
	  <xsl:template match="*"><any/></xsl:template>
	  <xsl:template match="b"><bee/></xsl:template>
	  <xsl:template match="/"><r><xsl:apply-templates/></r></xsl:template>
	</xsl:stylesheet>`
	got := transform(t, sheet, `<a><b/><c/></a>`)
	// match="a" falls to "*"; inside it nothing recurses (the * template
	// has empty body), so only the root's children are processed.
	if got != `<r><any/></r>` {
		t.Fatalf("got %s", got)
	}
	// Explicit priority can invert specificity.
	sheet2 := `<xsl:stylesheet version="1.0">
	  <xsl:template match="b"><bee/></xsl:template>
	  <xsl:template match="*" priority="10"><any/></xsl:template>
	  <xsl:template match="/"><r><xsl:apply-templates select="//b"/></r></xsl:template>
	</xsl:stylesheet>`
	got = transform(t, sheet2, `<a><b/></a>`)
	if got != `<r><any/></r>` {
		t.Fatalf("priority override: %s", got)
	}
}

func TestPatternMatching(t *testing.T) {
	doc := xmltree.MustParse(`<a><b><c/></b><c/></a>`)
	a := doc.DocumentElement()
	bc := a.Children()[0].Children()[0] // c under b
	topc := a.Children()[1]             // c under a
	cases := []struct {
		pat   string
		node  *xmltree.Node
		match bool
	}{
		{"c", bc, true},
		{"b/c", bc, true},
		{"b/c", topc, false},
		{"a/c", topc, true},
		{"a//c", bc, true},
		{"/a", a, true},
		{"/b", a, false},
		{"*", a, true},
		{"node()", a, true},
		{"b|c", topc, true},
		{"/", doc, true},
		{"/", a, false},
	}
	for _, c := range cases {
		p, err := parsePattern(c.pat)
		if err != nil {
			t.Fatalf("pattern %q: %v", c.pat, err)
		}
		if got := p.matches(c.node); got != c.match {
			t.Errorf("pattern %q on %s: %v, want %v", c.pat, c.node.Name, got, c.match)
		}
	}
}

func TestPatternErrors(t *testing.T) {
	for _, bad := range []string{"", "a[1]", "a//", "a|", "a b"} {
		if _, err := parsePattern(bad); err == nil {
			t.Errorf("pattern %q should be rejected", bad)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`<not-a-stylesheet/>`,
		`<xsl:stylesheet version="1.0"><div/></xsl:stylesheet>`,
		`<xsl:stylesheet version="1.0"><xsl:template/></xsl:stylesheet>`,
		`<xsl:stylesheet version="1.0"><xsl:template match="a" priority="x"/></xsl:stylesheet>`,
	}
	for _, src := range cases {
		if _, err := CompileString(src); err == nil {
			t.Errorf("%q should not compile", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`<xsl:stylesheet version="1.0"><xsl:template match="/"><xsl:value-of/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet version="1.0"><xsl:template match="/"><xsl:unknown/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet version="1.0"><xsl:template match="/"><a b="{oops("/></xsl:template></xsl:stylesheet>`,
	}
	for _, src := range cases {
		sheet, err := CompileString(src)
		if err != nil {
			continue // compile-time rejection also acceptable
		}
		if _, err := sheet.Transform(xmltree.MustParse(`<x/>`)); err == nil {
			t.Errorf("%q should fail at runtime", src)
		}
	}
	// Cyclic apply-templates is caught, not a stack overflow.
	sheet, err := CompileString(`<xsl:stylesheet version="1.0">
	  <xsl:template match="a"><xsl:apply-templates select="."/></xsl:template>
	</xsl:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sheet.Transform(xmltree.MustParse(`<a/>`)); err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("cycle: %v", err)
	}
}

func TestSplitStreams(t *testing.T) {
	bundle := xmltree.MustParse(`<SPLIT-OUTPUT>
	  <document><html><body>content</body></html></document>
	  <problems><problem>p one</problem><problem>p two</problem></problems>
	</SPLIT-OUTPUT>`)
	doc, problems, err := SplitStreams(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.String(); !strings.Contains(got, "<html><body>content</body></html>") {
		t.Fatalf("document stream: %s", got)
	}
	if len(problems) != 2 || problems[0] != "p one" || problems[1] != "p two" {
		t.Fatalf("problems: %v", problems)
	}
	// Element (not document) input also works.
	_, problems, err = SplitStreams(bundle.DocumentElement())
	if err != nil || len(problems) != 2 {
		t.Fatal("element input")
	}
}
