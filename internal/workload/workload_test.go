package workload

import (
	"testing"

	"lopsided/internal/awb"
)

func TestITModelDeterministic(t *testing.T) {
	a := BuildITModel(Config{Seed: 5, Users: 20})
	b := BuildITModel(Config{Seed: 5, Users: 20})
	if !awb.Equal(a, b) {
		t.Fatal("same seed must build identical models")
	}
	c := BuildITModel(Config{Seed: 6, Users: 20})
	if awb.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestITModelShape(t *testing.T) {
	m := BuildITModel(Config{Seed: 1, Users: 10, Systems: 3, Docs: 6, MissingVersionEvery: 3})
	if got := len(m.NodesOfType("User")); got != 10 {
		t.Fatalf("users = %d", got)
	}
	// Superusers are a subset of users (every 5th).
	if got := len(m.NodesOfType("Superuser")); got != 2 {
		t.Fatalf("superusers = %d", got)
	}
	// Exactly one SystemBeingDesigned by default...
	if got := len(m.NodesOfType("SystemBeingDesigned")); got != 1 {
		t.Fatalf("sbd = %d", got)
	}
	// ...and NodesOfType(System) includes it plus the 3 systems.
	if got := len(m.NodesOfType("System")); got != 4 {
		t.Fatalf("systems = %d", got)
	}
	// Every third document lacks a version.
	missing := 0
	for _, d := range m.NodesOfType("Document") {
		if _, ok := d.Prop("version"); !ok {
			missing++
		}
	}
	if missing != 2 {
		t.Fatalf("missing versions = %d", missing)
	}
}

func TestOmitSystemBeingDesigned(t *testing.T) {
	m := BuildITModel(Config{Seed: 2, OmitSystemBeingDesigned: true})
	if len(m.NodesOfType("SystemBeingDesigned")) != 0 {
		t.Fatal("should omit the singleton")
	}
	found := false
	for _, adv := range m.Validate() {
		if adv.Code == awb.CodeSingletonMissing {
			found = true
		}
	}
	if !found {
		t.Fatal("missing singleton should be advised")
	}
}

func TestOverridesProduceAdvisories(t *testing.T) {
	m := BuildITModel(Config{Seed: 3, Users: 8, OverrideEvery: 2})
	var mismatches, undeclared int
	for _, adv := range m.Validate() {
		switch adv.Code {
		case awb.CodeEndpointMismatch:
			mismatches++
		case awb.CodeUndeclaredProp:
			undeclared++
		}
	}
	if mismatches == 0 || undeclared == 0 {
		t.Fatalf("overrides should warn: %d mismatches, %d undeclared", mismatches, undeclared)
	}
}

func TestModelExportsAndReimports(t *testing.T) {
	m := BuildITModel(Config{Seed: 8, Users: 15})
	back, err := awb.ImportXML(m.ExportXMLString())
	if err != nil {
		t.Fatal(err)
	}
	if !awb.Equal(m, back) {
		t.Fatal("workload model does not round-trip")
	}
}

func TestGlassModel(t *testing.T) {
	m := BuildGlassModel(1)
	if len(m.NodesOfType("Piece")) != 9 {
		t.Fatalf("pieces = %d", len(m.NodesOfType("Piece")))
	}
	if len(m.NodesOfType("Maker")) != 3 {
		t.Fatal("makers")
	}
	// No singleton expectation in the glass metamodel.
	for _, adv := range m.Validate() {
		if adv.Code == awb.CodeSingletonMissing {
			t.Fatal("glass catalog must not warn about SystemBeingDesigned")
		}
	}
	// Deterministic.
	if !awb.Equal(m, BuildGlassModel(1)) {
		t.Fatal("glass model not deterministic")
	}
}

func TestTemplatesParse(t *testing.T) {
	for name, src := range map[string]string{
		"quick":   QuickTemplate,
		"context": SystemContextTemplate,
		"glass":   GlassCatalogTemplate,
	} {
		doc := ParseTemplate(src)
		if doc.DocumentElement().Name != "template" {
			t.Fatalf("%s: root is %q", name, doc.DocumentElement().Name)
		}
	}
	if ScalingTemplate(3) == nil || ErrorTemplate(2) == nil {
		t.Fatal("generated templates")
	}
}

func TestParseTemplatePanicsOnBadXML(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParseTemplate("<template>")
}
