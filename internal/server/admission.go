package server

// admission.go is the daemon's overload valve: a bounded-concurrency
// semaphore fronted by a bounded wait queue, with deadline-aware rejection
// and a two-level degradation ladder. The design bias is "reject early,
// reject cheap": a request that cannot plausibly be served inside its
// deadline is refused before it consumes a queue slot, and when the queue
// runs hot the work that is cheapest to retry (the batch class) sheds
// first so interactive traffic keeps flowing. Every rejection is a 503
// with Retry-After — the one failure mode a well-behaved client already
// knows how to handle.

import (
	"context"
	"sync/atomic"
	"time"
)

// RequestClass orders requests by how cheap they are to retry; cheaper
// classes shed first under load.
type RequestClass int

// Request classes. Batch work (bulk exports, rebuilds, anything a client
// retries from a loop) sheds before interactive traffic.
const (
	ClassInteractive RequestClass = iota
	ClassBatch
)

// ParseClass maps the wire form ("interactive", "batch", "") to a class;
// unknown strings conservatively count as interactive.
func ParseClass(s string) RequestClass {
	if s == "batch" {
		return ClassBatch
	}
	return ClassInteractive
}

// RejectReason says why admission refused a request.
type RejectReason int

// Rejection reasons, each with its own SRV code and metric.
const (
	RejectQueueFull RejectReason = iota
	RejectDegraded
	RejectDraining
	RejectDeadline
	RejectWaitTimeout
)

// Rejection is an admission refusal plus client-facing retry advice.
type Rejection struct {
	Reason     RejectReason
	Msg        string
	RetryAfter time.Duration
}

// admission is the controller. Tokens is a semaphore channel of capacity
// MaxConcurrent; waiters count themselves in queued (bounded by MaxQueue)
// while blocked on a token.
type admission struct {
	tokens      chan struct{}
	maxQueue    int64
	shedAt      int64 // queue depth at which the batch class sheds
	maxWait     time.Duration
	minHeadroom time.Duration
	draining    chan struct{} // closed when the daemon begins draining
	m           *Metrics

	// ewmaNanos tracks recent evaluation latency (atomically updated
	// int64 nanoseconds, EWMA α=1/8) to estimate queue wait for
	// deadline-aware rejection.
	ewmaNanos atomicDuration
}

func newAdmission(maxConcurrent, maxQueue int, maxWait, minHeadroom time.Duration, m *Metrics) *admission {
	if maxConcurrent <= 0 {
		maxConcurrent = 4
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	a := &admission{
		tokens:      make(chan struct{}, maxConcurrent),
		maxQueue:    int64(maxQueue),
		shedAt:      int64(maxQueue+1) / 2,
		maxWait:     maxWait,
		minHeadroom: minHeadroom,
		draining:    make(chan struct{}),
		m:           m,
	}
	return a
}

// beginDrain flips the controller into reject-everything mode. Idempotent
// via the caller (the server closes it exactly once).
func (a *admission) beginDrain() { close(a.draining) }

func (a *admission) isDraining() bool {
	select {
	case <-a.draining:
		return true
	default:
		return false
	}
}

// estimatedWait guesses how long a newly queued request will wait: queue
// position ahead of it times recent per-slot service time, spread over the
// concurrency. Zero until the first evaluation completes.
func (a *admission) estimatedWait() time.Duration {
	per := a.ewmaNanos.load()
	if per == 0 {
		return 0
	}
	depth := a.m.QueueDepth.Load()
	return time.Duration(depth+1) * per / time.Duration(cap(a.tokens))
}

// observeLatency feeds one completed evaluation's wall time into the EWMA.
func (a *admission) observeLatency(d time.Duration) {
	a.ewmaNanos.observe(d)
}

// Acquire admits the request or rejects it. On admission the returned
// release function MUST be called exactly once when the evaluation
// finishes. ctx carries the request deadline; class picks the shed order.
func (a *admission) Acquire(ctx context.Context, class RequestClass) (release func(), rej *Rejection) {
	if a.isDraining() {
		a.m.ShedDraining.Add(1)
		return nil, &Rejection{Reason: RejectDraining,
			Msg:        "daemon is draining; retry against another replica",
			RetryAfter: a.retryAfter(2)}
	}

	// Fast path: a free slot, no queueing.
	select {
	case a.tokens <- struct{}{}:
		a.m.Admitted.Add(1)
		a.m.InFlight.Add(1)
		return a.release, nil
	default:
	}

	// Deadline-aware refusal: if the client's deadline cannot survive the
	// estimated queue wait (plus headroom), reject now — the cheapest
	// possible outcome for work that was going to time out anyway.
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if est := a.estimatedWait(); remaining < est+a.minHeadroom {
			a.m.ShedDeadline.Add(1)
			return nil, &Rejection{Reason: RejectDeadline,
				Msg:        "deadline too tight to survive the admission queue",
				RetryAfter: a.retryAfter(1)}
		}
	}

	// Queue admission: bounded depth, with the degradation ladder.
	depth := a.m.QueueDepth.Add(1)
	defer a.m.QueueDepth.Add(-1)
	if depth > a.maxQueue {
		a.m.ShedQueueFull.Add(1)
		return nil, &Rejection{Reason: RejectQueueFull,
			Msg:        "admission queue full",
			RetryAfter: a.retryAfter(2)}
	}
	if class == ClassBatch && depth > a.shedAt {
		a.m.ShedDegraded.Add(1)
		return nil, &Rejection{Reason: RejectDegraded,
			Msg:        "degraded mode: batch-class work is shedding first",
			RetryAfter: a.retryAfter(2)}
	}

	wait := time.NewTimer(a.maxWait)
	defer wait.Stop()
	select {
	case a.tokens <- struct{}{}:
		a.m.Admitted.Add(1)
		a.m.Queued.Add(1)
		a.m.InFlight.Add(1)
		return a.release, nil
	case <-a.draining:
		a.m.ShedDraining.Add(1)
		return nil, &Rejection{Reason: RejectDraining,
			Msg:        "daemon began draining while the request was queued",
			RetryAfter: a.retryAfter(2)}
	case <-ctx.Done():
		a.m.ShedDeadline.Add(1)
		return nil, &Rejection{Reason: RejectDeadline,
			Msg:        "request deadline expired in the admission queue",
			RetryAfter: a.retryAfter(1)}
	case <-wait.C:
		a.m.ShedWaitTimeout.Add(1)
		return nil, &Rejection{Reason: RejectWaitTimeout,
			Msg:        "gave up waiting for an evaluation slot",
			RetryAfter: a.retryAfter(2)}
	}
}

func (a *admission) release() {
	<-a.tokens
	a.m.InFlight.Add(-1)
}

// retryAfter derives retry advice from observed latency and queue depth:
// roughly "when the current queue should have cleared", scaled by how hard
// the rejection was, clamped to [1s, 30s].
func (a *admission) retryAfter(severity int64) time.Duration {
	est := a.estimatedWait()
	d := time.Duration(severity) * est
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// atomicDuration is an EWMA (α = 1/8) over durations with atomic updates.
type atomicDuration struct {
	nanos atomic.Int64
}

func (a *atomicDuration) load() time.Duration {
	return time.Duration(a.nanos.Load())
}

func (a *atomicDuration) observe(d time.Duration) {
	for {
		old := a.nanos.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/8
		}
		if a.nanos.CompareAndSwap(old, next) {
			return
		}
	}
}
