package native

import (
	"strings"
	"testing"

	"lopsided/internal/awb"
	"lopsided/internal/workload"
	"lopsided/internal/xmltree"
)

func itModel(t *testing.T) *awb.Model {
	t.Helper()
	return awb.NewModel(workload.ITMetamodel())
}

func gen(t *testing.T, m *awb.Model, tpl string) string {
	t.Helper()
	res, err := New().Generate(m, workload.ParseTemplate(tpl))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return res.DocString()
}

func genErr(m *awb.Model, tpl string) error {
	_, err := New().Generate(m, workload.ParseTemplate(tpl))
	return err
}

func TestCopyThrough(t *testing.T) {
	m := itModel(t)
	got := gen(t, m, `<template><html lang="en"><p class="x">hi <b>there</b></p><!--c--><?pi d?></html></template>`)
	want := `<html lang="en"><p class="x">hi <b>there</b></p><!--c--><?pi d?></html>`
	if got != want {
		t.Fatalf("got %s", got)
	}
}

func TestForSelectors(t *testing.T) {
	m := itModel(t)
	u := m.NewNode("User")
	u.SetProp("label", "u")
	s := m.NewNode("System")
	s.SetProp("label", "s")
	p := m.NewNode("Program")
	p.SetProp("label", "p")
	m.Connect("uses", u, s)
	m.Connect("uses", u, p)

	if got := gen(t, m, `<template><for nodes="all.User"><i><label/></i></for></template>`); got != `<i>u</i>` {
		t.Fatalf("all: %s", got)
	}
	// Nested for with follow.
	got := gen(t, m, `<template><for nodes="all.User"><for nodes="follow.uses"><i><label/></i></for></for></template>`)
	if got != `<i>s</i><i>p</i>` {
		t.Fatalf("follow: %s", got)
	}
	// Target-type filter.
	got = gen(t, m, `<template><for nodes="all.User"><for nodes="follow.uses.Program"><i><label/></i></for></for></template>`)
	if got != `<i>p</i>` {
		t.Fatalf("follow with type: %s", got)
	}
	// Backward.
	got = gen(t, m, `<template><for nodes="all.Program"><for nodes="followback.uses"><i><label/></i></for></for></template>`)
	if got != `<i>u</i>` {
		t.Fatalf("followback: %s", got)
	}
}

func TestForErrors(t *testing.T) {
	m := itModel(t)
	m.NewNode("User")
	cases := []struct{ tpl, want string }{
		{`<template><for><p/></for></template>`, "nodes attribute or a <query>"},
		{`<template><for nodes="bogus"><p/></for></template>`, "bad selector"},
		{`<template><for nodes="follow.uses"><p/></for></template>`, "requires a focus"},
		{`<template><label/></template>`, "no focus"},
		{`<template><for nodes="all.User"><property/></for></template>`, `"name"`},
		{`<template><heading>x</heading></template>`, "outside <section>"},
		{`<template><if><then>x</then></if></template>`, "<test>"},
		{`<template><if><test/></if></template>`, "<then>"},
		{`<template><for nodes="all.User"><if><test><mystery/></test><then/></if></for></template>`, "unknown condition"},
		{`<template><replace-marker>x</replace-marker></template>`, `"marker"`},
		{`<template><matrix cols="all.User" relation="uses"/></template>`, `"rows"`},
		{`<template><for><query><bad/></query><p/></for></template>`, "bad <query>"},
	}
	for _, c := range cases {
		err := genErr(m, c.tpl)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("template %q: err = %v, want containing %q", c.tpl, err, c.want)
		}
		if _, ok := err.(*GenTrouble); !ok {
			t.Errorf("template %q: error type %T, want *GenTrouble", c.tpl, err)
		}
	}
	// Wrong root.
	doc := xmltree.MustParse(`<nope/>`)
	if _, err := New().Generate(m, doc); err == nil {
		t.Fatal("wrong root should fail")
	}
}

func TestGenTroubleCarriesContext(t *testing.T) {
	m := itModel(t)
	u := m.NewNode("User")
	u.SetProp("label", "u")
	err := genErr(m, `<template><for nodes="all.User"><property name="ghost" required="true"/></for></template>`)
	gt, ok := err.(*GenTrouble)
	if !ok {
		t.Fatalf("type %T", err)
	}
	if gt.FocusID != u.ID || gt.Directive != "property" || !strings.Contains(gt.Msg, "ghost") {
		t.Fatalf("GenTrouble = %+v", gt)
	}
	if !strings.Contains(gt.Error(), u.ID) {
		t.Fatal("Error() should mention the focus")
	}
}

func TestConditions(t *testing.T) {
	m := itModel(t)
	u := m.NewNode("Superuser")
	u.SetProp("label", "root")
	u.SetProp("shell", "ksh")
	s := m.NewNode("System")
	s.SetProp("label", "sys")
	m.Connect("uses", u, s)

	cases := []struct{ test, want string }{
		{`<focus-is-type type="User"/>`, "y"}, // Superuser is-a User
		{`<focus-is-type type="System"/>`, "n"},
		{`<has-property name="shell"/>`, "y"},
		{`<has-property name="ghost"/>`, "n"},
		{`<property-equals name="shell" value="ksh"/>`, "y"},
		{`<property-equals name="shell" value="bash"/>`, "n"},
		{`<property-equals name="ghost" value="x"/>`, "n"},
		{`<nonempty nodes="follow.uses"/>`, "y"},
		{`<nonempty nodes="follow.likes"/>`, "n"},
		{`<not><has-property name="ghost"/></not>`, "y"},
		{`<not><not><has-property name="shell"/></not></not>`, "y"},
		// Implicit conjunction of multiple conditions.
		{`<has-property name="shell"/><focus-is-type type="User"/>`, "y"},
		{`<has-property name="shell"/><focus-is-type type="System"/>`, "n"},
	}
	for _, c := range cases {
		tpl := `<template><for nodes="all.User"><if><test>` + c.test +
			`</test><then>y</then><else>n</else></if></for></template>`
		if got := gen(t, m, tpl); got != c.want {
			t.Errorf("test %s = %q, want %q", c.test, got, c.want)
		}
	}
}

func TestIfWithoutElse(t *testing.T) {
	m := itModel(t)
	m.NewNode("User")
	got := gen(t, m, `<template><for nodes="all.User"><if><test><has-property name="x"/></test><then>y</then></if></for></template>`)
	if got != "" {
		t.Fatalf("missing else should yield nothing: %q", got)
	}
}

func TestSectionNumbering(t *testing.T) {
	m := itModel(t)
	got := gen(t, m, `<template><toc-here/><section><heading>A</heading><section><heading>B</heading></section></section></template>`)
	for _, want := range []string{
		`id="sec-1">A</h2>`, `id="sec-2">B</h2>`,
		`<a href="#sec-1">A</a>`, `<a href="#sec-2">B</a>`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in %s", want, got)
		}
	}
}

func TestVisitedViaQueryIteration(t *testing.T) {
	m := itModel(t)
	a := m.NewNode("User")
	a.SetProp("label", "a")
	b := m.NewNode("User")
	b.SetProp("label", "b")
	_ = b
	tpl := `<template><for><query><start id="` + a.ID + `"/></query><label/></for><table-of-omissions types="User"/></template>`
	got := gen(t, m, tpl)
	if !strings.Contains(got, "User: b") {
		t.Fatalf("b should be an omission: %s", got)
	}
	if strings.Contains(got, "User: a") {
		t.Fatalf("a was visited: %s", got)
	}
}

func TestMarkerDirective(t *testing.T) {
	m := itModel(t)
	got := gen(t, m, `<template><p><marker name="X-HERE"/></p></template>`)
	if got != `<p>X-HERE</p>` {
		t.Fatalf("marker: %s", got)
	}
}

func TestReplaceMarkerLastWins(t *testing.T) {
	m := itModel(t)
	got := gen(t, m, `<template>
	  <replace-marker marker="M"><b>first</b></replace-marker>
	  <replace-marker marker="M"><i>second</i></replace-marker>
	  <p>M</p></template>`)
	if !strings.Contains(got, "<i>second</i>") || strings.Contains(got, "first") {
		t.Fatalf("last registration should win: %s", got)
	}
}

func TestSpliceMultipleMarkersEarliestFirst(t *testing.T) {
	m := itModel(t)
	got := gen(t, m, `<template>
	  <replace-marker marker="AA"><b>1</b></replace-marker>
	  <replace-marker marker="BB"><i>2</i></replace-marker>
	  <p>x BB y AA z</p></template>`)
	if !strings.Contains(got, `<p>x <i>2</i> y <b>1</b> z</p>`) {
		t.Fatalf("splice order: %s", got)
	}
}

func TestPropertyHTMLKinds(t *testing.T) {
	m := itModel(t)
	u := m.NewNode("Actor")
	u.SetProp("label", "a")
	u.SetProp("biography", "<p>bold <b>move</b></p>")
	u.SetProp("plain", "<not><parsed>")
	// Declared HTML property inlines as markup.
	got := gen(t, m, `<template><for nodes="all.Actor"><property-html name="biography"/></for></template>`)
	if got != `<p>bold <b>move</b></p>` {
		t.Fatalf("html property: %s", got)
	}
	// Undeclared (string) property with markup-looking value stays text.
	got = gen(t, m, `<template><for nodes="all.Actor"><property-html name="plain"/></for></template>`)
	if got != `&lt;not&gt;&lt;parsed&gt;` {
		t.Fatalf("string property via property-html: %s", got)
	}
	// <property> on an HTML property yields the text view.
	got = gen(t, m, `<template><for nodes="all.Actor"><property name="biography"/></for></template>`)
	if got != `bold move` {
		t.Fatalf("text view of html property: %s", got)
	}
}
