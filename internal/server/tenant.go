package server

// tenant.go gives every tenant its own bounded compiled-plan cache. The
// process-wide xq plan cache would work, but a multi-tenant daemon wants
// isolation in both directions: one tenant's unbounded query stream must
// not evict another tenant's hot plans, and per-tenant hit rates are a
// capacity-planning signal worth exporting (/stats reports them). The
// implementation reuses the engine cache's idiom — map + per-entry
// sync.Once so concurrent first compilations of one query compile exactly
// once — with FIFO eviction per tenant and LRU-ish eviction of whole idle
// tenants past the tenant cap.

import (
	"sync"
	"sync/atomic"
	"time"

	"lopsided/xq"
)

type tenantEntry struct {
	once sync.Once
	q    *xq.Query
	err  error
}

type tenantCache struct {
	mu       sync.Mutex
	m        map[string]*tenantEntry
	order    []string // insertion order, for FIFO eviction
	max      int
	lastUsed atomic.Int64 // unix nanos, for idle-tenant eviction

	hits, misses, evictions atomic.Int64
}

// TenantCacheStats is one tenant's cache scoreboard, reported by /stats.
type TenantCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// tenantCaches is the tenant → cache map, itself bounded.
type tenantCaches struct {
	mu         sync.Mutex
	m          map[string]*tenantCache
	maxTenants int
	maxPlans   int // per tenant
}

func newTenantCaches(maxTenants, maxPlans int) *tenantCaches {
	if maxTenants <= 0 {
		maxTenants = 64
	}
	if maxPlans <= 0 {
		maxPlans = 128
	}
	return &tenantCaches{
		m:          make(map[string]*tenantCache),
		maxTenants: maxTenants,
		maxPlans:   maxPlans,
	}
}

// forTenant returns (creating if needed) the tenant's cache. Past the
// tenant cap, the least recently used tenant's whole cache is dropped —
// recompiling is always safe, and an idle tenant's plans are the cheapest
// memory to reclaim.
func (tc *tenantCaches) forTenant(tenant string) *tenantCache {
	if tenant == "" {
		tenant = "default"
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	c, ok := tc.m[tenant]
	if !ok {
		if len(tc.m) >= tc.maxTenants {
			tc.evictIdlestLocked()
		}
		c = &tenantCache{m: make(map[string]*tenantEntry), max: tc.maxPlans}
		tc.m[tenant] = c
	}
	c.lastUsed.Store(time.Now().UnixNano())
	return c
}

func (tc *tenantCaches) evictIdlestLocked() {
	var victim string
	var oldest int64
	for name, c := range tc.m {
		if t := c.lastUsed.Load(); victim == "" || t < oldest {
			victim, oldest = name, t
		}
	}
	if victim != "" {
		delete(tc.m, victim)
	}
}

// Stats snapshots every live tenant's cache scoreboard.
func (tc *tenantCaches) Stats() map[string]TenantCacheStats {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make(map[string]TenantCacheStats, len(tc.m))
	for name, c := range tc.m {
		c.mu.Lock()
		n := len(c.m)
		c.mu.Unlock()
		out[name] = TenantCacheStats{
			Hits:      c.hits.Load(),
			Misses:    c.misses.Load(),
			Evictions: c.evictions.Load(),
			Entries:   n,
		}
	}
	return out
}

// compile returns the tenant's cached plan for src, compiling at most once
// per (tenant, src) even under concurrent first requests. Compilation
// errors are cached too — a tenant hammering a bad query pays a map hit,
// not a recompile. The second return reports a cache hit.
func (c *tenantCache) compile(src string, compile func(string) (*xq.Query, error)) (*xq.Query, bool, error) {
	c.mu.Lock()
	e, ok := c.m[src]
	if !ok {
		if len(c.m) >= c.max {
			// FIFO eviction: drop the oldest insertion.
			victim := c.order[0]
			c.order = c.order[1:]
			delete(c.m, victim)
			c.evictions.Add(1)
		}
		e = &tenantEntry{}
		c.m[src] = e
		c.order = append(c.order, src)
	}
	c.mu.Unlock()

	hit := true
	e.once.Do(func() {
		hit = false
		e.q, e.err = compile(src)
	})
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e.q, hit, e.err
}
