// Command xqrun evaluates an XQuery program from a file or -e expression.
//
//	xqrun -e 'for $i in 1 to 3 return $i * $i'
//	xqrun -ctx data.xml query.xq
//	xqrun -O 2 -galax-trace -e 'let $d := trace("gone", 1) return 2'
//	xqrun -timeout 2s -max-steps 1000000 -e 'some untrusted query'
//	xqrun -explain -e 'for $b in /lib/book return $b/title'
//	xqrun -stats -e 'count(1 to 100000)'
//
// Errors print as "xqrun: [CODE] line:col: message"; the exit code
// distinguishes usage (2), static (3), dynamic (4) and resource-limit (5)
// failures — see package cliutil.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lopsided/internal/cliutil"
	"lopsided/xq"
)

type varFlags map[string]string

func (v varFlags) String() string { return fmt.Sprint(map[string]string(v)) }

func (v varFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("-var wants name=value, got %q", s)
	}
	v[name] = val
	return nil
}

func main() {
	expr := flag.String("e", "", "inline XQuery expression (instead of a file)")
	ctxFile := flag.String("ctx", "", "XML file to use as the context item")
	optLevel := flag.Int("O", 2, "optimizer level (0-2)")
	galaxTrace := flag.Bool("galax-trace", false, "treat fn:trace as pure, reproducing the dead-code bug")
	traceEvents := flag.Bool("trace-events", false, "log every structured engine event (phases, clauses, calls, traces) to stderr")
	ef := cliutil.AddEngineFlags(flag.CommandLine)
	vars := varFlags{}
	flag.Var(vars, "var", "bind an external variable: -var name=value (repeatable)")
	flag.Parse()

	src := *expr
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: xqrun [-e expr | file.xq] [-ctx doc.xml] [-O n] [-var name=value]")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	// fn:trace output always reaches stderr; -trace-events widens the same
	// tracer to the full structured event stream.
	var tracer xq.Tracer = xq.TraceFunc(func(values []string) {
		fmt.Fprintln(os.Stderr, "trace:", strings.Join(values, " "))
	})
	if *traceEvents {
		tracer = xq.NewLogTracer(os.Stderr)
	}

	opts := []xq.Option{
		xq.WithLimits(ef.Limits()),
		xq.WithOptLevel(xq.OptLevel(*optLevel)),
		xq.WithTraceEffectful(!*galaxTrace),
		xq.WithTracer(tracer),
		xq.WithDocResolver(func(uri string) (*xq.Node, error) {
			data, err := os.ReadFile(uri)
			if err != nil {
				return nil, err
			}
			return xq.ParseXML(string(data))
		}),
	}
	q, err := xq.CompileCached(src, opts...)
	if err != nil {
		fatal(err)
	}
	if ef.Explain {
		fmt.Print(q.Explain())
		return
	}
	var ctx *xq.Node
	if *ctxFile != "" {
		data, err := os.ReadFile(*ctxFile)
		if err != nil {
			fatal(err)
		}
		if ctx, err = xq.ParseXML(string(data)); err != nil {
			fatal(err)
		}
	}
	external := map[string]xq.Sequence{}
	for name, val := range vars {
		external[name] = xq.Singleton(xq.String(val))
	}
	evalOpts := []xq.Option{xq.WithVars(external)}
	var st xq.EvalStats
	if ef.Stats {
		evalOpts = append(evalOpts, xq.WithStats(&st))
	}
	out, err := q.EvalString(nil, ctx, evalOpts...)
	if ef.Stats {
		fmt.Fprintln(os.Stderr, "stats:", st.String())
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(out)
}

// fatal prints the structured error surface (code, position, message) and
// exits with the cliutil taxonomy: 3 static, 4 dynamic, 5 limit, 1 other.
func fatal(err error) {
	os.Exit(cliutil.Report(os.Stderr, "xqrun", err))
}
