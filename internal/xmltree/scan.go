package xmltree

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// TokenKind classifies one event from the streaming Scanner.
type TokenKind int

// The event kinds a Scanner emits. Self-closing elements emit a
// TokStartElement with SelfClose set followed by a synthetic TokEndElement,
// so consumers always see balanced start/end pairs.
const (
	TokStartElement TokenKind = iota
	TokEndElement
	TokText
	TokComment
	TokPI
	TokEOF
)

// ScanAttr is one attribute of a TokStartElement, in document order.
type ScanAttr struct {
	Name, Value string
}

// Token is one parse event. Name holds the element name (start/end) or PI
// target; Data holds text, comment data, or PI data.
type Token struct {
	Kind      TokenKind
	Name      string
	Data      string
	Attrs     []ScanAttr
	SelfClose bool
}

// Scanner is an event-driven XML tokenizer over an io.Reader: the streaming
// twin of the whole-string parser in parse.go. It accepts exactly the same
// language and reports exactly the same *ParseError text and positions —
// the differential harness compares projected parses against string parses
// of the same bytes, so the two front ends must never disagree about what
// is well-formed.
//
// A Scanner parses one complete document: optional XML declaration, misc
// items, one root element, trailing misc, then TokEOF forever. SkipElement
// consumes a just-opened element's entire subtree with full validation but
// without building tokens, names, or text — the projection parser's
// no-allocation path over pruned branches.
type Scanner struct {
	r    *bufio.Reader
	opts ParseOptions

	line, col int
	consumed  int64

	// stack holds the open element names (Next-mode elements only; skip
	// mode tracks its nested names in the arena).
	stack []string

	seenRoot   bool
	begun      bool // XML-declaration window passed
	queuedEnd  bool // synthetic end for a self-closing element
	queuedName string
	err        error

	// textBuf accumulates one coalesced text run; reused across tokens.
	textBuf []byte
	// arena is skip-mode scratch for element/attribute names and raw
	// attribute values, reused so steady-state skipping does not allocate.
	arena        []byte
	elemsSkipped int64
}

// NewScanner returns a Scanner over r with the given options.
func NewScanner(r io.Reader, opts ParseOptions) *Scanner {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<14)
	}
	return &Scanner{r: br, opts: opts, line: 1, col: 1}
}

// BytesRead reports how many input bytes the scanner has consumed.
func (s *Scanner) BytesRead() int64 { return s.consumed }

// ElementsSkipped reports how many elements SkipElement has consumed
// without building (the projection layer's pruning counter).
func (s *Scanner) ElementsSkipped() int64 { return s.elemsSkipped }

// Depth reports the number of currently open elements.
func (s *Scanner) Depth() int { return len(s.stack) }

func (s *Scanner) maxDepth() int {
	if s.opts.MaxDepth > 0 {
		return s.opts.MaxDepth
	}
	return DefaultMaxDepth
}

func (s *Scanner) errorf(format string, args ...interface{}) error {
	return s.errorfAt(s.line, s.col, format, args...)
}

func (s *Scanner) errorfAt(line, col int, format string, args ...interface{}) error {
	e := &ParseError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
	s.err = e
	return e
}

// peekByte returns the next byte without consuming it; ok is false at EOF.
func (s *Scanner) peekByte() (byte, bool) {
	b, err := s.r.Peek(1)
	if err != nil || len(b) == 0 {
		return 0, false
	}
	return b[0], true
}

// hasPrefix reports whether the unread input starts with p.
func (s *Scanner) hasPrefix(p string) bool {
	b, _ := s.r.Peek(len(p))
	return len(b) >= len(p) && string(b) == p
}

// advanceByte consumes one byte, maintaining line/col exactly like the
// string parser (byte-wise columns, '\n' starts a new line).
func (s *Scanner) advanceByte() (byte, bool) {
	b, err := s.r.ReadByte()
	if err != nil {
		return 0, false
	}
	if b == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	s.consumed++
	return b, true
}

func (s *Scanner) advance(n int) {
	for i := 0; i < n; i++ {
		if _, ok := s.advanceByte(); !ok {
			return
		}
	}
}

func (s *Scanner) expect(lit string) error {
	if !s.hasPrefix(lit) {
		return s.errorf("expected %q", lit)
	}
	s.advance(len(lit))
	return nil
}

func (s *Scanner) skipSpace() {
	for {
		b, ok := s.peekByte()
		if !ok {
			return
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			s.advance(1)
		default:
			return
		}
	}
}

// peekRune decodes the next rune without consuming it.
func (s *Scanner) peekRune() (rune, int) {
	b, _ := s.r.Peek(utf8.UTFMax)
	if len(b) == 0 {
		return utf8.RuneError, 0
	}
	return utf8.DecodeRune(b)
}

// readNameBytes scans an XML name into the arena and returns its span
// (valid until the arena is truncated past mark).
func (s *Scanner) readNameBytes() (mark int, err error) {
	mark = len(s.arena)
	r, size := s.peekRune()
	if size == 0 || !isNameStart(r) {
		return mark, s.errorf("expected name")
	}
	for {
		for i := 0; i < size; i++ {
			b, _ := s.advanceByte()
			s.arena = append(s.arena, b)
		}
		r, size = s.peekRune()
		if size == 0 || !isNameChar(r) {
			return mark, nil
		}
	}
}

func (s *Scanner) readName() (string, error) {
	mark, err := s.readNameBytes()
	if err != nil {
		return "", err
	}
	name := string(s.arena[mark:])
	s.arena = s.arena[:mark]
	return name, nil
}

// Next returns the next token. After an error or TokEOF every further call
// returns the same outcome.
func (s *Scanner) Next() (Token, error) {
	if s.err != nil {
		return Token{}, s.err
	}
	if s.queuedEnd {
		s.queuedEnd = false
		name := s.queuedName
		s.queuedName = ""
		return Token{Kind: TokEndElement, Name: name}, nil
	}
	if len(s.stack) == 0 {
		return s.nextDocLevel()
	}
	return s.nextContent()
}

// nextDocLevel produces tokens at document level: the parseMisc loop of the
// string parser.
func (s *Scanner) nextDocLevel() (Token, error) {
	if !s.begun {
		s.begun = true
		if s.hasPrefix("<?xml") {
			// The string parser searches for "?>" before advancing, so an
			// unterminated declaration reports position 1:1.
			if err := s.discardUntil("?>", 1, 1, "unterminated XML declaration"); err != nil {
				return Token{}, err
			}
		}
	}
	for {
		s.skipSpace()
		if _, ok := s.peekByte(); !ok {
			if !s.seenRoot {
				return Token{}, s.errorf("document has no root element")
			}
			return Token{Kind: TokEOF}, nil
		}
		switch {
		case s.hasPrefix("<!--"):
			tok, keep, err := s.scanComment()
			if err != nil {
				return Token{}, err
			}
			if keep {
				return tok, nil
			}
		case s.hasPrefix("<!DOCTYPE"):
			if err := s.skipDoctype(); err != nil {
				return Token{}, err
			}
		case s.hasPrefix("<?"):
			return s.scanPI()
		default:
			b, _ := s.peekByte()
			if b != '<' {
				return Token{}, s.errorf("unexpected content %q at document level", string(b))
			}
			if s.seenRoot {
				return Token{}, s.errorf("multiple root elements")
			}
			s.seenRoot = true
			return s.scanStartTag()
		}
	}
}

// nextContent produces tokens inside an open element: the parseContent
// loop. Text runs coalesce across entities and CDATA sections and flush at
// the next structural token, exactly like the string parser.
func (s *Scanner) nextContent() (Token, error) {
	s.textBuf = s.textBuf[:0]
	// flush materializes the accumulated run as a token, or drops it when
	// empty or whitespace-only under TrimWhitespace; either way the buffer
	// drains, so a dropped run never bleeds into the next one.
	flush := func() (Token, bool) {
		if len(s.textBuf) == 0 {
			return Token{}, false
		}
		d := string(s.textBuf)
		s.textBuf = s.textBuf[:0]
		if s.opts.TrimWhitespace && strings.TrimSpace(d) == "" {
			return Token{}, false
		}
		return Token{Kind: TokText, Data: d}, true
	}
	for {
		b, ok := s.peekByte()
		if !ok {
			return Token{}, s.errorf("unterminated element <%s>", s.stack[len(s.stack)-1])
		}
		switch {
		case s.hasPrefix("</"):
			if tok, ok := flush(); ok {
				return tok, nil
			}
			return s.scanEndTag()
		case s.hasPrefix("<!--"):
			if tok, ok := flush(); ok {
				return tok, nil
			}
			tok, keep, err := s.scanComment()
			if err != nil {
				return Token{}, err
			}
			if keep {
				return tok, nil
			}
		case s.hasPrefix("<![CDATA["):
			s.advance(len("<![CDATA["))
			line, col := s.line, s.col
			if err := s.appendUntil(&s.textBuf, "]]>", line, col, "unterminated CDATA section"); err != nil {
				return Token{}, err
			}
		case s.hasPrefix("<?"):
			if tok, ok := flush(); ok {
				return tok, nil
			}
			return s.scanPI()
		case b == '<':
			if tok, ok := flush(); ok {
				return tok, nil
			}
			return s.scanStartTag()
		case b == '&':
			rep, err := s.scanEntity(true)
			if err != nil {
				return Token{}, err
			}
			s.textBuf = append(s.textBuf, rep...)
		default:
			s.advance(1)
			s.textBuf = append(s.textBuf, b)
		}
	}
}

// scanComment consumes a comment; keep is false when DropComments is set.
func (s *Scanner) scanComment() (Token, bool, error) {
	s.advance(len("<!--"))
	line, col := s.line, s.col
	if s.opts.DropComments {
		if err := s.discardUntil("-->", line, col, "unterminated comment"); err != nil {
			return Token{}, false, err
		}
		return Token{}, false, nil
	}
	var buf []byte
	if err := s.appendUntil(&buf, "-->", line, col, "unterminated comment"); err != nil {
		return Token{}, false, err
	}
	return Token{Kind: TokComment, Data: string(buf)}, true, nil
}

// scanPI consumes a processing instruction.
func (s *Scanner) scanPI() (Token, error) {
	s.advance(len("<?"))
	target, err := s.readName()
	if err != nil {
		return Token{}, err
	}
	line, col := s.line, s.col
	var buf []byte
	if err := s.appendUntil(&buf, "?>", line, col, "unterminated processing instruction"); err != nil {
		return Token{}, err
	}
	data := strings.TrimLeft(string(buf), " \t\r\n")
	return Token{Kind: TokPI, Name: target, Data: data}, nil
}

// skipDoctype mirrors the string parser: skip to '>' tolerating an internal
// subset in brackets.
func (s *Scanner) skipDoctype() error {
	depth := 0
	for {
		b, ok := s.peekByte()
		if !ok {
			return s.errorf("unterminated DOCTYPE")
		}
		switch b {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				s.advance(1)
				return nil
			}
		}
		s.advance(1)
	}
}

// scanStartTag consumes "<name attrs…>" or "<name attrs…/>". Self-closing
// elements queue a synthetic end token.
func (s *Scanner) scanStartTag() (Token, error) {
	if len(s.stack)+1 > s.maxDepth() {
		return Token{}, s.errorf("element nesting exceeds %d levels", s.maxDepth())
	}
	if err := s.expect("<"); err != nil {
		return Token{}, err
	}
	name, err := s.readName()
	if err != nil {
		return Token{}, err
	}
	var attrs []ScanAttr
	selfClose, err := s.scanAttrs(name, func(aname, aval string) error {
		for _, a := range attrs {
			if a.Name == aname {
				return s.errorf("duplicate attribute %q on <%s>", aname, name)
			}
		}
		attrs = append(attrs, ScanAttr{Name: aname, Value: aval})
		return nil
	})
	if err != nil {
		return Token{}, err
	}
	if selfClose {
		s.queuedEnd = true
		s.queuedName = name
		return Token{Kind: TokStartElement, Name: name, Attrs: attrs, SelfClose: true}, nil
	}
	s.stack = append(s.stack, name)
	return Token{Kind: TokStartElement, Name: name, Attrs: attrs}, nil
}

// scanAttrs consumes the attribute list and closing ">" or "/>" of a start
// tag whose name is already read, calling add for each decoded attribute.
func (s *Scanner) scanAttrs(name string, add func(aname, aval string) error) (selfClose bool, err error) {
	for {
		s.skipSpace()
		b, ok := s.peekByte()
		if !ok {
			return false, s.errorf("unterminated start tag <%s", name)
		}
		if b == '>' || b == '/' {
			break
		}
		aname, err := s.readName()
		if err != nil {
			return false, err
		}
		s.skipSpace()
		if err := s.expect("="); err != nil {
			return false, err
		}
		s.skipSpace()
		aval, err := s.scanAttrValue()
		if err != nil {
			return false, err
		}
		if err := add(aname, aval); err != nil {
			return false, err
		}
	}
	if b, _ := s.peekByte(); b == '/' {
		s.advance(1)
		if err := s.expect(">"); err != nil {
			return false, err
		}
		return true, nil
	}
	if err := s.expect(">"); err != nil {
		return false, err
	}
	return false, nil
}

// scanEndTag consumes "</name>" and validates the match.
func (s *Scanner) scanEndTag() (Token, error) {
	s.advance(2)
	got, err := s.readName()
	if err != nil {
		return Token{}, err
	}
	want := s.stack[len(s.stack)-1]
	if got != want {
		return Token{}, s.errorf("end tag </%s> does not match <%s>", got, want)
	}
	s.skipSpace()
	if err := s.expect(">"); err != nil {
		return Token{}, err
	}
	s.stack = s.stack[:len(s.stack)-1]
	return Token{Kind: TokEndElement, Name: got}, nil
}

// scanAttrValue consumes a quoted attribute value and decodes entities.
// Decoding happens after the closing quote is consumed, so error positions
// match the string parser, whose decode pass runs post-advance.
func (s *Scanner) scanAttrValue() (string, error) {
	mark := len(s.arena)
	defer func() { s.arena = s.arena[:mark] }()
	hasAmp, err := s.scanAttrRaw()
	if err != nil {
		return "", err
	}
	raw := s.arena[mark:]
	if !hasAmp {
		return string(raw), nil
	}
	var b strings.Builder
	for i := 0; i < len(raw); {
		if raw[i] != '&' {
			b.WriteByte(raw[i])
			i++
			continue
		}
		end := -1
		for j := i; j < len(raw); j++ {
			if raw[j] == ';' {
				end = j - i
				break
			}
		}
		if end < 0 {
			return "", s.errorf("unterminated entity in attribute value")
		}
		r, err := resolveEntityBytes(raw[i+1:i+end], true)
		if err != nil {
			return "", s.errorf("%v", err)
		}
		b.WriteString(r)
		i += end + 1
	}
	return b.String(), nil
}

// scanAttrRaw consumes a quoted value into the arena without decoding,
// reporting whether it contains '&'.
func (s *Scanner) scanAttrRaw() (hasAmp bool, err error) {
	quote, ok := s.peekByte()
	if !ok || (quote != '"' && quote != '\'') {
		return false, s.errorf("expected quoted attribute value")
	}
	s.advance(1)
	for {
		c, ok := s.peekByte()
		if !ok {
			return false, s.errorf("unterminated attribute value")
		}
		if c == quote {
			break
		}
		if c == '<' {
			return false, s.errorf("'<' in attribute value")
		}
		if c == '&' {
			hasAmp = true
		}
		s.advance(1)
		s.arena = append(s.arena, c)
	}
	s.advance(1)
	return hasAmp, nil
}

// scanEntity consumes "&name;" or a character reference and returns the
// replacement. With build false the reference is validated but the result
// is discarded, allocation-free for the predeclared entities.
func (s *Scanner) scanEntity(build bool) (string, error) {
	// The string parser requires ';' within 12 bytes of the '&'.
	win, _ := s.r.Peek(13)
	end := -1
	for i := 1; i < len(win); i++ {
		if win[i] == ';' {
			end = i
			break
		}
	}
	if end < 0 {
		return "", s.errorf("unterminated entity reference")
	}
	rep, err := resolveEntityBytes(win[1:end], build)
	if err != nil {
		return "", s.errorf("%v", err)
	}
	s.advance(end + 1)
	return rep, nil
}

// resolveEntityBytes mirrors resolveEntity over a byte span. With build
// false the replacement is validated but "" is returned, without
// allocating for the predeclared names.
func resolveEntityBytes(ent []byte, build bool) (string, error) {
	switch string(ent) { // compiled without allocation
	case "lt":
		return pick(build, "<"), nil
	case "gt":
		return pick(build, ">"), nil
	case "amp":
		return pick(build, "&"), nil
	case "quot":
		return pick(build, `"`), nil
	case "apos":
		return pick(build, "'"), nil
	}
	if len(ent) >= 2 && ent[0] == '#' && (ent[1] == 'x' || ent[1] == 'X') {
		v, ok := parseUintBytes(ent[2:], 16)
		if !ok {
			return "", fmt.Errorf("bad character reference &%s;", ent)
		}
		if !build {
			return "", nil
		}
		return string(rune(v)), nil
	}
	if len(ent) >= 1 && ent[0] == '#' {
		v, ok := parseUintBytes(ent[1:], 10)
		if !ok {
			return "", fmt.Errorf("bad character reference &%s;", ent)
		}
		if !build {
			return "", nil
		}
		return string(rune(v)), nil
	}
	return "", fmt.Errorf("unknown entity &%s;", ent)
}

func pick(build bool, s string) string {
	if !build {
		return ""
	}
	return s
}

// parseUintBytes parses digits in the given base with strconv.ParseUint's
// 32-bit bounds, without allocating.
func parseUintBytes(b []byte, base uint32) (uint32, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, false
		}
		if d >= base {
			return 0, false
		}
		v = v*uint64(base) + uint64(d)
		if v > 1<<32-1 {
			return 0, false
		}
	}
	return uint32(v), true
}

// discardUntil consumes input up to and including delim, building nothing.
// On EOF the error reports at (line, col), the position the string
// parser's failed Index search would report.
func (s *Scanner) discardUntil(delim string, line, col int, unterminated string) error {
	n := len(delim)
	var win [4]byte
	filled := 0
	for {
		b, ok := s.advanceByte()
		if !ok {
			return s.errorfAt(line, col, "%s", unterminated)
		}
		copy(win[:], win[1:n])
		win[n-1] = b
		if filled < n {
			filled++
		}
		if filled == n && string(win[:n]) == delim {
			return nil
		}
	}
}

// appendUntil consumes input up to and including delim, appending the bytes
// before delim to *buf. The delimiter match never straddles bytes appended
// before this call (mirroring the string parser's bounded Index search).
func (s *Scanner) appendUntil(buf *[]byte, delim string, line, col int, unterminated string) error {
	n := len(delim)
	var win [4]byte
	filled := 0
	for {
		b, ok := s.advanceByte()
		if !ok {
			return s.errorfAt(line, col, "%s", unterminated)
		}
		*buf = append(*buf, b)
		copy(win[:], win[1:n])
		win[n-1] = b
		if filled < n {
			filled++
		}
		if filled == n && string(win[:n]) == delim {
			*buf = (*buf)[:len(*buf)-n]
			return nil
		}
	}
}

// SkipElement consumes the content and end tag of the element most recently
// opened by a non-self-closing TokStartElement, validating everything the
// string parser would (nesting bound, tag matching, attribute rules, entity
// references, comment/CDATA/PI termination) while building nothing. Names
// and raw attribute values live in a reused arena, so skipping a pruned
// subtree is allocation-free in steady state.
func (s *Scanner) SkipElement() error {
	if s.err != nil {
		return s.err
	}
	if len(s.stack) == 0 {
		return fmt.Errorf("xmltree: SkipElement with no open element")
	}
	base := len(s.stack)
	arenaMark := len(s.arena)
	defer func() { s.arena = s.arena[:arenaMark] }()
	// spans are the arena extents of element names opened inside the skip;
	// strict nesting means the innermost open name is always the arena top.
	var spans [][2]int
	openName := func() string {
		if len(spans) > 0 {
			sp := spans[len(spans)-1]
			return string(s.arena[sp[0]:sp[1]])
		}
		return s.stack[base-1]
	}
	for {
		b, ok := s.peekByte()
		if !ok {
			return s.errorf("unterminated element <%s>", openName())
		}
		switch {
		case s.hasPrefix("</"):
			s.advance(2)
			mark, err := s.readNameBytes()
			if err != nil {
				return err
			}
			got := s.arena[mark:]
			if len(spans) == 0 {
				if string(got) != s.stack[base-1] {
					return s.errorf("end tag </%s> does not match <%s>", got, s.stack[base-1])
				}
			} else {
				sp := spans[len(spans)-1]
				if string(got) != string(s.arena[sp[0]:sp[1]]) {
					return s.errorf("end tag </%s> does not match <%s>", got, s.arena[sp[0]:sp[1]])
				}
			}
			s.skipSpace()
			if err := s.expect(">"); err != nil {
				return err
			}
			s.arena = s.arena[:mark]
			if len(spans) == 0 {
				s.stack = s.stack[:base-1]
				return nil
			}
			sp := spans[len(spans)-1]
			spans = spans[:len(spans)-1]
			s.arena = s.arena[:sp[0]]
		case s.hasPrefix("<!--"):
			s.advance(len("<!--"))
			line, col := s.line, s.col
			if err := s.discardUntil("-->", line, col, "unterminated comment"); err != nil {
				return err
			}
		case s.hasPrefix("<![CDATA["):
			s.advance(len("<![CDATA["))
			line, col := s.line, s.col
			if err := s.discardUntil("]]>", line, col, "unterminated CDATA section"); err != nil {
				return err
			}
		case s.hasPrefix("<?"):
			s.advance(2)
			nameMark, err := s.readNameBytes()
			if err != nil {
				return err
			}
			s.arena = s.arena[:nameMark]
			line, col := s.line, s.col
			if err := s.discardUntil("?>", line, col, "unterminated processing instruction"); err != nil {
				return err
			}
		case b == '<':
			if err := s.skipStartTag(base, &spans); err != nil {
				return err
			}
		case b == '&':
			if _, err := s.scanEntity(false); err != nil {
				return err
			}
		default:
			s.advance(1)
		}
	}
}

// skipStartTag validates one start tag in skip mode: nesting bound, names,
// attribute syntax, duplicate detection, and entity validity, all against
// the arena.
func (s *Scanner) skipStartTag(base int, spans *[][2]int) error {
	if base+len(*spans)+1 > s.maxDepth() {
		return s.errorf("element nesting exceeds %d levels", s.maxDepth())
	}
	s.advance(1) // '<'
	nameMark, err := s.readNameBytes()
	if err != nil {
		return err
	}
	nameEnd := len(s.arena)
	// Attribute names append after the element name; attrSpans index them
	// for duplicate detection.
	var attrSpans [][2]int
	for {
		s.skipSpace()
		b, ok := s.peekByte()
		if !ok {
			return s.errorf("unterminated start tag <%s", s.arena[nameMark:nameEnd])
		}
		if b == '>' || b == '/' {
			break
		}
		aMark, err := s.readNameBytes()
		if err != nil {
			return err
		}
		aEnd := len(s.arena)
		s.skipSpace()
		if err := s.expect("="); err != nil {
			return err
		}
		s.skipSpace()
		if err := s.skipAttrValue(); err != nil {
			return err
		}
		for _, sp := range attrSpans {
			if string(s.arena[sp[0]:sp[1]]) == string(s.arena[aMark:aEnd]) {
				return s.errorf("duplicate attribute %q on <%s>",
					s.arena[aMark:aEnd], s.arena[nameMark:nameEnd])
			}
		}
		attrSpans = append(attrSpans, [2]int{aMark, aEnd})
	}
	selfClose := false
	if b, _ := s.peekByte(); b == '/' {
		s.advance(1)
		if err := s.expect(">"); err != nil {
			return err
		}
		selfClose = true
	} else if err := s.expect(">"); err != nil {
		return err
	}
	s.elemsSkipped++
	// Attribute names are no longer needed; keep only the element name.
	s.arena = s.arena[:nameEnd]
	if selfClose {
		s.arena = s.arena[:nameMark]
		return nil
	}
	*spans = append(*spans, [2]int{nameMark, nameEnd})
	return nil
}

// skipAttrValue validates a quoted value and its entity references without
// building the decoded string. The raw bytes pass through the arena so the
// post-quote entity validation can run at the same position the string
// parser's decode pass reports errors from.
func (s *Scanner) skipAttrValue() error {
	mark := len(s.arena)
	defer func() { s.arena = s.arena[:mark] }()
	hasAmp, err := s.scanAttrRaw()
	if err != nil {
		return err
	}
	if !hasAmp {
		return nil
	}
	raw := s.arena[mark:]
	for i := 0; i < len(raw); {
		if raw[i] != '&' {
			i++
			continue
		}
		end := -1
		for j := i; j < len(raw); j++ {
			if raw[j] == ';' {
				end = j - i
				break
			}
		}
		if end < 0 {
			return s.errorf("unterminated entity in attribute value")
		}
		if _, err := resolveEntityBytes(raw[i+1:i+end], false); err != nil {
			return s.errorf("%v", err)
		}
		i += end + 1
	}
	return nil
}
