package experiments

import (
	"fmt"
	"strings"

	"lopsided/internal/textkit"
	"lopsided/xq"
)

func init() {
	register("E1", "Sequence/element indexing (the paper's Table 1)", runE1)
	register("E2", "Attribute folding in element constructors", runE2)
	register("E9", "Sequence-flattening rationale", runE9)
}

// evalStr evaluates one expression and serializes, "error: ..." on failure.
func evalStr(src string, opts ...xq.Option) string {
	q, err := xq.CompileCached(src, opts...)
	if err != nil {
		return "compile error: " + err.Error()
	}
	out, err := q.EvalString(nil, nil)
	if err != nil {
		return "error: " + err.Error()
	}
	if out == "" {
		return "()"
	}
	return out
}

// runE1 regenerates the paper's seven-row table: bind X, Y, Z, build
// ($X,$Y,$Z), and try to get Y back with [2].
func runE1() (Report, error) {
	type row struct{ label, x, y, z, paperSays string }
	rows := []row{
		{"Y itself", `1`, `2`, `3`, "2"},
		{"Some part of Y", `1`, `(2, "2a")`, `4`, "2"},
		{"Z", `1`, `()`, `3`, "3"},
		{"A part of X", `("1a","1b")`, `2`, `3`, "1b"},
		{"A part of Z", `1`, `()`, `("3a","3b")`, "3b"},
		{"Nothing", `()`, `(2)`, `()`, "()"},
		{"An error (for element rep.)", `1`, `attribute y {"why?"}`, `2`, "error"},
	}
	var out [][]string
	mismatches := 0
	for _, r := range rows {
		seqSrc := fmt.Sprintf(`let $X := %s let $Y := %s let $Z := %s return ($X,$Y,$Z)[2]`, r.x, r.y, r.z)
		got := evalStr(seqSrc)
		elemSrc := fmt.Sprintf(`let $X := %s let $Y := %s let $Z := %s return <el>{$X}{$Y}{$Z}</el>/node()[2]`, r.x, r.y, r.z)
		elemGot := evalStr(elemSrc)
		if elemGot == "" {
			elemGot = "()"
		}
		match := "yes"
		if got != r.paperSays && !(r.paperSays == "error" && strings.HasPrefix(elemGot, "error")) {
			match = "no*"
			mismatches++
		}
		out = append(out, []string{r.label, r.x, r.y, r.z, got, elemGot, r.paperSays, match})
	}
	return Report{
		ID:    "E1",
		Title: "Sequence/element indexing (Table 1)",
		Paper: "seven bindings of X/Y/Z and what ($X,$Y,$Z)[2] hands back; attributes break the element representation",
		Text: textkit.Table(
			[]string{"result", "X", "Y", "Z", "seq [2]", "elem /node()[2]", "paper", "match"},
			out),
		Verdict: fmt.Sprintf("%d/%d rows reproduce the paper exactly; the 'A part of Z' row yields \"3a\" under draft flattening — (1,\"3a\",\"3b\")[2] — an apparent erratum in the paper's \"3b\" (the row's point, Z leaking out instead of Y, holds either way)", len(rows)-mismatches, len(rows)),
	}, nil
}

// runE2 regenerates the three attribute-folding behaviors of "Treatment of
// Child Elements".
func runE2() (Report, error) {
	lead := `let $x := attribute troubles {1} return <el> {$x} </el>`
	dup := `let $a := attribute a {1}
	        let $b := attribute a {2}
	        let $c := attribute b {3}
	        return <el> {$a}{$b}{$c} </el>`
	wrongPos := `let $x := attribute troubles {1} return <el> "doom" {$x} </el>`

	rows := [][]string{
		{"leading attr folds", evalStr(lead), `<el troubles="1"/>`},
		{"dup attrs, draft last-wins", evalStr(dup), `one of <el a="1" b="3"/> / <el a="2" b="3"/>`},
		{"dup attrs, draft first-wins", evalStr(dup, xq.WithDupAttrPolicy(xq.DupAttrFirstWins)), "(the other legal outcome)"},
		{"dup attrs, Galax bug (both kept)", evalStr(dup, xq.WithDupAttrPolicy(xq.DupAttrGalaxBug)), `"Galax did not honor this"`},
		{"dup attrs, final 1.0 spec", evalStr(dup, xq.WithDupAttrPolicy(xq.DupAttrError)), "XQDY0025 error"},
		{"attr after content", evalStr(wrongPos), "error (XQTY0024)"},
	}
	return Report{
		ID:      "E2",
		Title:   "Attribute folding (T3)",
		Paper:   `leading attribute nodes become attributes; duplicates keep one ("though Galax did not honor this"); an attribute after non-attribute content "will cause an error"`,
		Text:    textkit.Table([]string{"case", "engine output", "paper"}, rows),
		Verdict: "all three behaviors reproduce, including the Galax duplicate-attribute bug behind DupAttrGalaxBug",
	}, nil
}

// runE9 checks the three justifications the paper gives for flattening.
func runE9() (Report, error) {
	rows := [][]string{
		{"children come back flat",
			evalStr(`let $d := <r><n><k>1</k><k>2</k></n><n><k>3</k></n></r>
			          return for $x in $d/n return string($x/k[1])`),
			"1 3"},
		{"nested FORs are one-dimensional",
			evalStr(`for $a in (1,2) return for $b in (10,20) return $a * $b`),
			"10 20 20 40"},
		{"search returns the item, not a singleton list",
			evalStr(`(for $a in (5,7,9) return $a[. gt 6])[1] + 1`),
			"8"},
		{"the flattening identity",
			evalStr(`(1,(2,3,4),(),(5,((6,7))))`),
			"1 2 3 4 5 6 7"},
	}
	ok := 0
	for _, r := range rows {
		if r[1] == r[2] {
			ok++
		}
	}
	return Report{
		ID:      "E9",
		Title:   "Flattening rationale (C6)",
		Paper:   "flattening matches the XML data model, spares de-nesting in nested FLWORs, and unifies searching with accumulating",
		Text:    textkit.Table([]string{"claim", "engine", "expected"}, rows),
		Verdict: fmt.Sprintf("%d/%d rationale examples behave as the paper describes", ok, len(rows)),
	}, nil
}
