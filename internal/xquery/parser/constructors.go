package parser

import (
	"strings"

	"lopsided/internal/xquery/ast"
	"lopsided/internal/xquery/lexer"
)

// computedConstructorNames can begin computed constructors.
var computedConstructorNames = map[string]bool{
	"element": true, "attribute": true, "text": true, "comment": true,
	"document": true, "processing-instruction": true,
}

// peek2 returns the token two ahead of the current one.
func (p *Parser) peek2() lexer.Token {
	save := p.lx.Save()
	t1, err := p.lx.Next()
	if err != nil {
		p.lx.Restore(save)
		return lexer.Token{Kind: lexer.EOF}
	}
	_ = t1
	t2, err := p.lx.Next()
	p.lx.Restore(save)
	if err != nil {
		return lexer.Token{Kind: lexer.EOF}
	}
	return t2
}

// startsComputedConstructor reports whether the current token begins a
// computed constructor: `element {`, `element name {`, `text {`, etc.
func (p *Parser) startsComputedConstructor() bool {
	if p.tok.Kind != lexer.NAME || !computedConstructorNames[p.tok.Text] {
		return false
	}
	nxt := p.peekNext()
	if nxt.Kind == lexer.LBRACE {
		return true
	}
	switch p.tok.Text {
	case "element", "attribute", "processing-instruction":
		return nxt.Kind == lexer.NAME && p.peek2().Kind == lexer.LBRACE
	}
	return false
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	b := p.at()
	switch p.tok.Kind {
	case lexer.STRING:
		v := p.tok.Text
		return &ast.StringLit{Base: b, Value: v}, p.next()
	case lexer.INTEGER:
		i, _, err := lexer.ParseNumber(p.tok)
		if err != nil {
			return nil, p.errf("bad integer literal %q", p.tok.Text)
		}
		return &ast.IntLit{Base: b, Value: i}, p.next()
	case lexer.DECIMAL:
		_, f, err := lexer.ParseNumber(p.tok)
		if err != nil {
			return nil, p.errf("bad decimal literal %q", p.tok.Text)
		}
		return &ast.DecimalLit{Base: b, Value: f}, p.next()
	case lexer.DOUBLE:
		_, f, err := lexer.ParseNumber(p.tok)
		if err != nil {
			return nil, p.errf("bad double literal %q", p.tok.Text)
		}
		return &ast.DoubleLit{Base: b, Value: f}, p.next()
	case lexer.VAR:
		name := p.tok.Text
		return &ast.VarRef{Base: b, Name: name}, p.next()
	case lexer.DOT:
		return &ast.ContextItem{Base: b}, p.next()
	case lexer.LPAREN:
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == lexer.RPAREN {
			return &ast.EmptySeq{Base: b}, p.next()
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(lexer.RPAREN)
	case lexer.LT:
		return p.parseDirConstructor()
	case lexer.NAME:
		if p.startsComputedConstructor() {
			return p.parseComputedConstructor()
		}
		if p.isName("ordered") || p.isName("unordered") {
			if p.peekNext().Kind == lexer.LBRACE {
				if err := p.next(); err != nil {
					return nil, err
				}
				if err := p.expect(lexer.LBRACE); err != nil {
					return nil, err
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				return e, p.expect(lexer.RBRACE)
			}
		}
		if p.peekNext().Kind == lexer.LPAREN {
			if reservedFuncNames[p.tok.Text] || kindTestNames[p.tok.Text] {
				return nil, p.errf("%q cannot be used as a function name", p.tok.Text)
			}
			return p.parseFunctionCall()
		}
	}
	return nil, p.errf("unexpected %s %q in expression", p.tok.Kind, p.tok.Text)
}

func (p *Parser) parseFunctionCall() (ast.Expr, error) {
	b := p.at()
	name := p.tok.Text
	if err := p.next(); err != nil {
		return nil, err
	}
	if err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	call := &ast.FunctionCall{Base: b, Name: name}
	for p.tok.Kind != lexer.RPAREN {
		arg, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if p.tok.Kind == lexer.COMMA {
			if err := p.next(); err != nil {
				return nil, err
			}
		} else if p.tok.Kind != lexer.RPAREN {
			return nil, p.errf("expected ',' or ')' in argument list")
		}
	}
	return call, p.next()
}

// ---- Computed constructors ----

func (p *Parser) parseComputedConstructor() (ast.Expr, error) {
	b := p.at()
	kw := p.tok.Text
	if err := p.next(); err != nil {
		return nil, err
	}
	var staticName string
	var nameExpr ast.Expr
	switch kw {
	case "element", "attribute", "processing-instruction":
		if p.tok.Kind == lexer.NAME {
			staticName = p.tok.Text
			if err := p.next(); err != nil {
				return nil, err
			}
		} else {
			if err := p.expect(lexer.LBRACE); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(lexer.RBRACE); err != nil {
				return nil, err
			}
			nameExpr = e
		}
	}
	if err := p.expect(lexer.LBRACE); err != nil {
		return nil, err
	}
	var content ast.Expr
	if p.tok.Kind != lexer.RBRACE {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		content = e
	}
	if err := p.expect(lexer.RBRACE); err != nil {
		return nil, err
	}
	switch kw {
	case "element":
		return &ast.CompElem{Base: b, Name: staticName, NameExpr: nameExpr, Content: content}, nil
	case "attribute":
		return &ast.CompAttr{Base: b, Name: staticName, NameExpr: nameExpr, Content: content}, nil
	case "text":
		return &ast.CompText{Base: b, Content: content}, nil
	case "comment":
		return &ast.CompComment{Base: b, Content: content}, nil
	case "document":
		return &ast.CompDoc{Base: b, Content: content}, nil
	case "processing-instruction":
		if staticName == "" {
			return nil, p.errf("processing-instruction constructor requires a static target name")
		}
		return &ast.CompPI{Base: b, Target: staticName, Content: content}, nil
	}
	return nil, p.errf("unknown computed constructor %q", kw)
}

// ---- Direct constructors (raw mode) ----

// parseDirConstructor is entered with the current token being LT. It rewinds
// the lexer to the '<' and scans the constructor in raw character mode.
func (p *Parser) parseDirConstructor() (ast.Expr, error) {
	p.lx.RestoreOffset(p.tok.Offset)
	var e ast.Expr
	var err error
	switch {
	case p.lx.RawHasPrefix("<!--"):
		e, err = p.parseDirCommentRaw()
	case p.lx.RawHasPrefix("<?"):
		e, err = p.parseDirPIRaw()
	default:
		e, err = p.parseDirElemRaw()
	}
	if err != nil {
		return nil, err
	}
	// Resume token mode after the constructor.
	return e, p.next()
}

func (p *Parser) parseDirCommentRaw() (ast.Expr, error) {
	b := ast.At(p.lx.Pos())
	p.lx.RawAdvance(len("<!--"))
	end := p.lx.RawIndex("-->")
	if end < 0 {
		return nil, p.lx.Errf("unterminated comment constructor")
	}
	data := p.lx.RawSlice(end)
	p.lx.RawAdvance(end + len("-->"))
	return &ast.DirComment{Base: b, Data: data}, nil
}

func (p *Parser) parseDirPIRaw() (ast.Expr, error) {
	b := ast.At(p.lx.Pos())
	p.lx.RawAdvance(len("<?"))
	target, err := p.lx.RawScanQName()
	if err != nil {
		return nil, err
	}
	end := p.lx.RawIndex("?>")
	if end < 0 {
		return nil, p.lx.Errf("unterminated processing-instruction constructor")
	}
	data := strings.TrimLeft(p.lx.RawSlice(end), " \t\r\n")
	p.lx.RawAdvance(end + len("?>"))
	return &ast.DirPI{Base: b, Target: target, Data: data}, nil
}

// litRun accumulates a literal text run during raw content scanning.
type litRun struct {
	b         strings.Builder
	protected bool // contained an entity or CDATA: never boundary-stripped
}

// parseDirElemRaw parses a direct element constructor with the lexer
// positioned at its '<'.
func (p *Parser) parseDirElemRaw() (ast.Expr, error) {
	// Direct elements nest through parseDirContentRaw without passing
	// through parseExprSingle, so they need their own depth charge.
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	b := ast.At(p.lx.Pos())
	p.lx.RawAdvance(1) // <
	name, err := p.lx.RawScanQName()
	if err != nil {
		return nil, err
	}
	el := &ast.DirElem{Base: b, Name: name}
	// Attributes.
	for {
		p.lx.RawSkipSpace()
		if p.lx.RawEOF() {
			return nil, p.lx.Errf("unterminated start tag <%s", name)
		}
		c := p.lx.RawPeek()
		if c == '>' || c == '/' {
			break
		}
		attr, err := p.parseDirAttrRaw()
		if err != nil {
			return nil, err
		}
		// Literal duplicates are a static error (XQST0040), unlike computed
		// duplicates, which the runtime resolves per DupAttrPolicy (XQDY0025
		// under DupAttrError). Keeping the codes distinct mirrors the spec's
		// split and keeps the error surface identical across configurations.
		for _, prev := range el.Attrs {
			if prev.Name == attr.Name {
				return nil, p.lx.CodedErrf("XQST0040", "duplicate attribute %q in constructor <%s>", attr.Name, name)
			}
		}
		el.Attrs = append(el.Attrs, attr)
	}
	if p.lx.RawPeek() == '/' {
		p.lx.RawAdvance(1)
		if p.lx.RawPeek() != '>' {
			return nil, p.lx.Errf("expected '>' after '/' in constructor")
		}
		p.lx.RawAdvance(1)
		return el, nil
	}
	p.lx.RawAdvance(1) // >
	if err := p.parseDirContentRaw(el, name); err != nil {
		return nil, err
	}
	return el, nil
}

func (p *Parser) parseDirAttrRaw() (ast.DirAttr, error) {
	pos := p.lx.Pos()
	aname, err := p.lx.RawScanQName()
	if err != nil {
		return ast.DirAttr{}, err
	}
	attr := ast.DirAttr{Name: aname, P: pos}
	p.lx.RawSkipSpace()
	if p.lx.RawPeek() != '=' {
		return ast.DirAttr{}, p.lx.Errf("expected '=' after attribute name %q", aname)
	}
	p.lx.RawAdvance(1)
	p.lx.RawSkipSpace()
	quote := p.lx.RawPeek()
	if quote != '"' && quote != '\'' {
		return ast.DirAttr{}, p.lx.Errf("expected quoted attribute value")
	}
	p.lx.RawAdvance(1)
	var run strings.Builder
	flush := func() {
		if run.Len() > 0 {
			attr.Parts = append(attr.Parts, &ast.StringLit{Base: ast.At(pos), Value: run.String()})
			run.Reset()
		}
	}
	for {
		if p.lx.RawEOF() {
			return ast.DirAttr{}, p.lx.Errf("unterminated attribute value")
		}
		c := p.lx.RawPeek()
		switch {
		case c == quote:
			if p.lx.RawPeekAt(1) == quote { // doubled delimiter
				run.WriteByte(quote)
				p.lx.RawAdvance(2)
				continue
			}
			p.lx.RawAdvance(1)
			flush()
			return attr, nil
		case c == '{':
			if p.lx.RawPeekAt(1) == '{' {
				run.WriteByte('{')
				p.lx.RawAdvance(2)
				continue
			}
			flush()
			e, err := p.parseEnclosedRaw()
			if err != nil {
				return ast.DirAttr{}, err
			}
			attr.Parts = append(attr.Parts, e)
		case c == '}':
			if p.lx.RawPeekAt(1) == '}' {
				run.WriteByte('}')
				p.lx.RawAdvance(2)
				continue
			}
			return ast.DirAttr{}, p.lx.Errf("unescaped '}' in attribute value")
		case c == '&':
			s, err := p.lx.RawScanEntity()
			if err != nil {
				return ast.DirAttr{}, err
			}
			run.WriteString(s)
		case c == '<':
			return ast.DirAttr{}, p.lx.Errf("'<' in attribute value")
		default:
			run.WriteByte(c)
			p.lx.RawAdvance(1)
		}
	}
}

// parseEnclosedRaw parses an enclosed expression; the lexer is positioned at
// its '{'. On return the lexer is positioned just after the matching '}'.
// An empty enclosure {} denotes the empty sequence.
func (p *Parser) parseEnclosedRaw() (ast.Expr, error) {
	b := ast.At(p.lx.Pos())
	p.lx.RawAdvance(1) // {
	if err := p.next(); err != nil {
		return nil, err
	}
	if p.tok.Kind == lexer.RBRACE {
		return &ast.EmptySeq{Base: b}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != lexer.RBRACE {
		return nil, p.errf("expected '}' to close enclosed expression, found %s %q", p.tok.Kind, p.tok.Text)
	}
	return e, nil
}

func (p *Parser) parseDirContentRaw(el *ast.DirElem, closeName string) error {
	var run litRun
	flush := func() {
		if run.b.Len() == 0 {
			return
		}
		el.Content = append(el.Content, &ast.StringLit{Base: ast.At(p.lx.Pos()), Value: run.b.String()})
		el.LiteralText = append(el.LiteralText, !run.protected)
		run.b.Reset()
		run.protected = false
	}
	appendExpr := func(e ast.Expr) {
		el.Content = append(el.Content, e)
		el.LiteralText = append(el.LiteralText, false)
	}
	for {
		if p.lx.RawEOF() {
			return p.lx.Errf("unterminated element constructor <%s>", closeName)
		}
		switch {
		case p.lx.RawHasPrefix("</"):
			flush()
			p.lx.RawAdvance(2)
			got, err := p.lx.RawScanQName()
			if err != nil {
				return err
			}
			if got != closeName {
				return p.lx.Errf("end tag </%s> does not match <%s>", got, closeName)
			}
			p.lx.RawSkipSpace()
			if p.lx.RawPeek() != '>' {
				return p.lx.Errf("expected '>' in end tag")
			}
			p.lx.RawAdvance(1)
			return nil
		case p.lx.RawHasPrefix("<!--"):
			flush()
			e, err := p.parseDirCommentRaw()
			if err != nil {
				return err
			}
			appendExpr(e)
		case p.lx.RawHasPrefix("<![CDATA["):
			p.lx.RawAdvance(len("<![CDATA["))
			end := p.lx.RawIndex("]]>")
			if end < 0 {
				return p.lx.Errf("unterminated CDATA section")
			}
			run.b.WriteString(p.lx.RawSlice(end))
			run.protected = true
			p.lx.RawAdvance(end + len("]]>"))
		case p.lx.RawHasPrefix("<?"):
			flush()
			e, err := p.parseDirPIRaw()
			if err != nil {
				return err
			}
			appendExpr(e)
		case p.lx.RawPeek() == '<':
			flush()
			e, err := p.parseDirElemRaw()
			if err != nil {
				return err
			}
			appendExpr(e)
		case p.lx.RawPeek() == '{':
			if p.lx.RawPeekAt(1) == '{' {
				run.b.WriteByte('{')
				p.lx.RawAdvance(2)
				continue
			}
			flush()
			e, err := p.parseEnclosedRaw()
			if err != nil {
				return err
			}
			appendExpr(e)
		case p.lx.RawPeek() == '}':
			if p.lx.RawPeekAt(1) == '}' {
				run.b.WriteByte('}')
				p.lx.RawAdvance(2)
				continue
			}
			return p.lx.Errf("unescaped '}' in element content")
		case p.lx.RawPeek() == '&':
			s, err := p.lx.RawScanEntity()
			if err != nil {
				return err
			}
			run.b.WriteString(s)
			run.protected = true
		default:
			run.b.WriteByte(p.lx.RawPeek())
			p.lx.RawAdvance(1)
		}
	}
}
