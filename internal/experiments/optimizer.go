package experiments

import (
	"fmt"

	"lopsided/internal/textkit"
	"lopsided/xq"
)

func init() {
	register("E7", "The trace / dead-code-elimination anecdote", runE7)
	register("E8", "Set encodings: sequences vs XML elements", runE8)
}

// traceProgram is the paper's exact debugging shape.
const traceProgram = `
let $x := 2 + 3
let $dummy := trace("x=", $x)
let $y := $x * 10
return $y`

// insinuatedProgram is the workaround: trace insinuated into live code.
const insinuatedProgram = `
let $x := trace("x=", 2 + 3)
let $y := $x * 10
return $y`

func runTraceConfig(src string, lvl xq.OptLevel, effectful bool) (result string, traces int, eliminated int, err error) {
	count := 0
	q, err := xq.CompileCached(src,
		xq.WithOptLevel(lvl),
		xq.WithTraceEffectful(effectful),
		xq.WithTracer(xq.TraceFunc(func([]string) { count++ })))
	if err != nil {
		return "", 0, 0, fmt.Errorf("trace program does not compile: %w", err)
	}
	out, err := q.EvalString(nil, nil)
	if err != nil {
		return "", 0, 0, fmt.Errorf("trace program failed: %w", err)
	}
	return out, count, q.Stats.EliminatedLets, nil
}

func runE7() (Report, error) {
	type cfg struct {
		name      string
		lvl       xq.OptLevel
		effectful bool
	}
	cfgs := []cfg{
		{"no optimizer (O0)", xq.O0, false},
		{"Galax-era O2, trace pure", xq.O2, false},
		{"post-fix O2, trace effectful", xq.O2, true},
	}
	var rows [][]string
	for _, c := range cfgs {
		res, traces, elim, err := runTraceConfig(traceProgram, c.lvl, c.effectful)
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", c.name, err)
		}
		rows = append(rows, []string{"let $dummy := trace(...)", c.name, res,
			fmt.Sprintf("%d", traces), fmt.Sprintf("%d", elim)})
	}
	for _, c := range cfgs {
		res, traces, elim, err := runTraceConfig(insinuatedProgram, c.lvl, c.effectful)
		if err != nil {
			return Report{}, fmt.Errorf("insinuated %s: %w", c.name, err)
		}
		rows = append(rows, []string{"insinuated trace", c.name, res,
			fmt.Sprintf("%d", traces), fmt.Sprintf("%d", elim)})
	}
	return Report{
		ID:    "E7",
		Title: "Trace vs dead-code elimination (C4)",
		Paper: `"Simply adding the trace introduces a dead variable $dummy, which the Galax compiler helpfully optimizes away — along with the call to trace. So, we had to insinuate trace calls into non-dead code."`,
		Text: textkit.Table(
			[]string{"program", "configuration", "result", "traces fired", "lets eliminated"},
			rows),
		Verdict: "with DCE on and trace treated as pure, the dummy-let trace silently vanishes (result unchanged, zero traces); insinuating the trace into live code defeats the pass; marking trace effectful — the eventual Galax fix — restores it",
	}, nil
}

// ---- E8: set encodings ----

// stringSetProgram keeps a set of strings as a plain sequence (the approach
// the paper settled on) and performs n membership probes with `=`.
func stringSetProgram() string {
	return `
declare variable $n external;
let $set := for $i in 1 to $n return concat("k", $i)
let $hits := for $i in 1 to $n where concat("k", $i) = $set return 1
return count($hits)`
}

// xmlSetProgram encodes the set as an XML element (the encoding required
// for anything beyond strings) and probes it the same way.
func xmlSetProgram() string {
	return `
declare variable $n external;
let $set := <set>{for $i in 1 to $n return <e v="k{$i}"/>}</set>
let $hits := for $i in 1 to $n where exists($set/e[@v = concat("k", $i)]) return 1
return count($hits)`
}

func runE8() (Report, error) {
	qSeq, err := xq.CompileCached(stringSetProgram())
	if err != nil {
		return Report{}, fmt.Errorf("sequence-set program does not compile: %w", err)
	}
	qXML, err := xq.CompileCached(xmlSetProgram())
	if err != nil {
		return Report{}, fmt.Errorf("xml-set program does not compile: %w", err)
	}
	sizes := []int{16, 64, 256}
	var rows [][]string
	for _, n := range sizes {
		vars := map[string]xq.Sequence{"n": xq.Singleton(xq.Integer(n))}
		check := func(q *xq.Query) error {
			out, err := q.EvalString(nil, nil, xq.WithVars(vars))
			if err != nil || out != fmt.Sprintf("%d", n) {
				return fmt.Errorf("bad set result at n=%d: %q %v", n, out, err)
			}
			return nil
		}
		if err := check(qSeq); err != nil {
			return Report{}, err
		}
		if err := check(qXML); err != nil {
			return Report{}, err
		}
		runs := 5
		if n >= 256 {
			runs = 3
		}
		seqT := medianTime(runs, func() { _, _ = qSeq.Eval(nil, nil, xq.WithVars(vars)) })
		xmlT := medianTime(runs, func() { _, _ = qXML.Eval(nil, nil, xq.WithVars(vars)) })
		rows = append(rows, []string{fmt.Sprintf("%d", n), fmtDur(seqT), fmtDur(xmlT),
			textkit.Ratio(float64(xmlT), float64(seqT))})
	}
	// The semantic half: why the encoding is needed at all. A "set" of
	// sequences flattens; points-as-pairs break.
	flat := evalStr(`count(((1,2),(3,4)))`)
	return Report{
		ID:    "E8",
		Title: "Set encodings (C5)",
		Paper: `"If we represent the two sets as XML structures (which makes the basic operations several times as expensive)"; "making a list of the points (1,2) and (3,4) actually makes a list of four numbers"`,
		Text: textkit.Table([]string{"set size", "string-set (sequence)", "XML-encoded set", "xml/seq"}, rows) +
			fmt.Sprintf("\nwhy encode at all: count(((1,2),(3,4))) = %s — the unencoded representation flattens\n", flat),
		Verdict: "XML-encoded sets cost several times the sequence representation, as the paper estimated — and the flattening demo shows why only strings could avoid the encoding",
	}, nil
}
