// Package xmltree implements a from-scratch XML document object model:
// parsing, navigation, mutation, and serialization of XML trees.
//
// The model is deliberately close to the XQuery/XPath data model's view of
// XML: six node kinds (document, element, attribute, text, comment,
// processing instruction), parent links everywhere, attributes modeled as
// nodes (the paper's "illogically, it caused us a great deal of trouble"
// attribute nodes), and a total document order over all nodes of a tree.
//
// It intentionally does not use encoding/xml: the reproduction builds every
// substrate from scratch, and the XQuery engine needs direct control over
// node identity, attribute nodes, and document order.
//
// # Panic contract
//
// Functions in this package panic only on programmer misuse of the tree API
// — appending a node to a non-container, inserting under the wrong parent,
// re-parenting an attribute node, or calling MustParse on a malformed
// literal. No input reachable from user data may panic: Parse and
// ParseFragment return *ParseError for every malformed document, including
// pathologically deep nesting (bounded by ParseOptions.MaxDepth, default
// DefaultMaxDepth, so recursion cannot overflow the goroutine stack).
// Callers feeding untrusted input must use the error-returning entry
// points; the XQuery engine additionally contains any residual panic at its
// Eval boundary and surfaces it as a coded LOPS0009 error.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind identifies which of the six XML node kinds a Node is.
type NodeKind int

// The six node kinds of the XML data model.
const (
	DocumentNode NodeKind = iota
	ElementNode
	AttributeNode
	TextNode
	CommentNode
	PINode
)

// String returns the XPath kind-test spelling of the node kind.
func (k NodeKind) String() string {
	switch k {
	case DocumentNode:
		return "document-node()"
	case ElementNode:
		return "element()"
	case AttributeNode:
		return "attribute()"
	case TextNode:
		return "text()"
	case CommentNode:
		return "comment()"
	case PINode:
		return "processing-instruction()"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a single node of an XML tree. One concrete struct represents all
// six kinds; fields that do not apply to a kind are empty.
//
//   - DocumentNode: Children holds the top-level nodes.
//   - ElementNode: Name is the element name, Attrs its attribute nodes,
//     Children its content.
//   - AttributeNode: Name is the attribute name, Data its string value.
//   - TextNode, CommentNode: Data is the text.
//   - PINode: Name is the target, Data the instruction body.
//
// Nodes have identity: two distinct Node pointers are distinct nodes even if
// structurally equal, exactly as in the XQuery data model.
type Node struct {
	Kind     NodeKind
	Name     string // element/attribute name or PI target (as written, possibly prefix:local)
	Data     string // text, comment or PI content, or attribute value
	Parent   *Node
	Attrs    []*Node // element attributes, each with Kind == AttributeNode
	Children []*Node // document/element content
}

// NewDocument returns an empty document node.
func NewDocument() *Node { return &Node{Kind: DocumentNode} }

// NewElement returns a parentless element node with the given name.
func NewElement(name string) *Node { return &Node{Kind: ElementNode, Name: name} }

// NewText returns a parentless text node with the given content.
func NewText(data string) *Node { return &Node{Kind: TextNode, Data: data} }

// NewComment returns a parentless comment node.
func NewComment(data string) *Node { return &Node{Kind: CommentNode, Data: data} }

// NewAttr returns a free-standing attribute node. Free-standing attribute
// nodes are first-class values in XQuery (`attribute a {1}`) and are the
// source of the paper's attribute-folding behaviors.
func NewAttr(name, value string) *Node {
	return &Node{Kind: AttributeNode, Name: name, Data: value}
}

// NewPI returns a parentless processing-instruction node.
func NewPI(target, data string) *Node { return &Node{Kind: PINode, Name: target, Data: data} }

// AppendChild appends c to n's content and sets its parent. It panics if n
// cannot have children or if c is an attribute node (attributes are attached
// with SetAttr, never as children).
func (n *Node) AppendChild(c *Node) {
	if n.Kind != ElementNode && n.Kind != DocumentNode {
		panic(fmt.Sprintf("xmltree: %v cannot have children", n.Kind))
	}
	if c.Kind == AttributeNode {
		panic("xmltree: attribute node appended as child; use SetAttr")
	}
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InsertChildAt inserts c at index i of n's children (0 ≤ i ≤ len).
func (n *Node) InsertChildAt(i int, c *Node) {
	if i < 0 || i > len(n.Children) {
		panic(fmt.Sprintf("xmltree: InsertChildAt index %d out of range [0,%d]", i, len(n.Children)))
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// RemoveChildAt removes and returns the child at index i, clearing its parent.
func (n *Node) RemoveChildAt(i int) *Node {
	c := n.Children[i]
	copy(n.Children[i:], n.Children[i+1:])
	n.Children = n.Children[:len(n.Children)-1]
	c.Parent = nil
	return c
}

// ReplaceChildAt replaces the child at index i with c and returns the old child.
func (n *Node) ReplaceChildAt(i int, c *Node) *Node {
	old := n.Children[i]
	old.Parent = nil
	c.Parent = n
	n.Children[i] = c
	return old
}

// ChildIndex returns the index of c in n's children, or -1.
func (n *Node) ChildIndex(c *Node) int {
	for i, k := range n.Children {
		if k == c {
			return i
		}
	}
	return -1
}

// SetAttr sets attribute name to value on element n, replacing any existing
// attribute of the same name, and returns the attribute node.
func (n *Node) SetAttr(name, value string) *Node {
	if n.Kind != ElementNode {
		panic("xmltree: SetAttr on non-element")
	}
	for _, a := range n.Attrs {
		if a.Name == name {
			a.Data = value
			return a
		}
	}
	a := NewAttr(name, value)
	a.Parent = n
	n.Attrs = append(n.Attrs, a)
	return a
}

// AttachAttr attaches an existing free-standing attribute node to element n.
// If an attribute with the same name exists it is replaced and returned;
// otherwise AttachAttr returns nil.
func (n *Node) AttachAttr(a *Node) *Node {
	if n.Kind != ElementNode || a.Kind != AttributeNode {
		panic("xmltree: AttachAttr kind mismatch")
	}
	a.Parent = n
	for i, old := range n.Attrs {
		if old.Name == a.Name {
			n.Attrs[i] = a
			old.Parent = nil
			return old
		}
	}
	n.Attrs = append(n.Attrs, a)
	return nil
}

// Attr returns the string value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Data, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute's value, or def if absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// AttrNode returns the named attribute node, or nil.
func (n *Node) AttrNode(name string) *Node {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RemoveAttr removes the named attribute if present, reporting whether it was.
func (n *Node) RemoveAttr(name string) bool {
	for i, a := range n.Attrs {
		if a.Name == name {
			copy(n.Attrs[i:], n.Attrs[i+1:])
			n.Attrs = n.Attrs[:len(n.Attrs)-1]
			a.Parent = nil
			return true
		}
	}
	return false
}

// Root returns the topmost ancestor of n (the node itself if parentless).
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Document returns the owning document node, or nil if the tree is not
// rooted in a document.
func (n *Node) Document() *Node {
	r := n.Root()
	if r.Kind == DocumentNode {
		return r
	}
	return nil
}

// DocumentElement returns the first element child of a document node, or nil.
func (n *Node) DocumentElement() *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			return c
		}
	}
	return nil
}

// StringValue returns the node's string value per the XQuery data model:
// concatenated descendant text for documents and elements, the literal value
// for attributes, text, comments and PIs.
func (n *Node) StringValue() string {
	switch n.Kind {
	case DocumentNode, ElementNode:
		var b strings.Builder
		n.appendText(&b)
		return b.String()
	default:
		return n.Data
	}
}

func (n *Node) appendText(b *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case TextNode:
			b.WriteString(c.Data)
		case ElementNode:
			c.appendText(b)
		}
	}
}

// LocalName returns the local part of the node's name (after any prefix).
func (n *Node) LocalName() string {
	if i := strings.IndexByte(n.Name, ':'); i >= 0 {
		return n.Name[i+1:]
	}
	return n.Name
}

// Prefix returns the namespace prefix of the node's name, or "".
func (n *Node) Prefix() string {
	if i := strings.IndexByte(n.Name, ':'); i >= 0 {
		return n.Name[:i]
	}
	return ""
}

// Clone returns a deep copy of the subtree rooted at n. The copy is
// parentless; all copied nodes are new identities (as required by XQuery
// element construction, which copies content).
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]*Node, len(n.Attrs))
		for i, a := range n.Attrs {
			ca := a.Clone()
			ca.Parent = c
			c.Attrs[i] = ca
		}
	}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, k := range n.Children {
			ck := k.Clone()
			ck.Parent = c
			c.Children[i] = ck
		}
	}
	return c
}

// Equal reports deep structural equality of two subtrees (kind, name, data,
// attributes in order, children in order). Node identity is ignored.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name || a.Data != b.Data ||
		len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if !Equal(a.Attrs[i], b.Attrs[i]) {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// path returns the child-index path from the root to n. Attribute nodes sort
// just after their owner element and before its children, matching the
// XQuery document-order rule.
func (n *Node) path() []int {
	var p []int
	for n.Parent != nil {
		par := n.Parent
		if n.Kind == AttributeNode {
			ai := 0
			for i, a := range par.Attrs {
				if a == n {
					ai = i
					break
				}
			}
			// Attributes order before children: index encodes position
			// as a negative offset so attr i < child 0.
			p = append(p, ai-len(par.Attrs))
		} else {
			p = append(p, par.ChildIndex(n))
		}
		n = par
	}
	// reverse
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// CompareDocOrder orders two nodes of the same tree: -1 if a precedes b,
// 0 if a == b, +1 if a follows b. Nodes of different trees are ordered by an
// arbitrary but consistent tiebreak (root pointer comparison via path length
// then pointer formatting), so sorting mixed sequences is deterministic
// within a process.
func CompareDocOrder(a, b *Node) int {
	if a == b {
		return 0
	}
	ra, rb := a.Root(), b.Root()
	if ra != rb {
		// Different trees: arbitrary consistent order.
		sa, sb := fmt.Sprintf("%p", ra), fmt.Sprintf("%p", rb)
		if sa < sb {
			return -1
		}
		return 1
	}
	pa, pb := a.path(), b.path()
	for i := 0; i < len(pa) && i < len(pb); i++ {
		if pa[i] != pb[i] {
			if pa[i] < pb[i] {
				return -1
			}
			return 1
		}
	}
	// One is ancestor of the other: ancestor first.
	if len(pa) < len(pb) {
		return -1
	}
	return 1
}

// SortDocOrder sorts nodes into document order in place and removes
// duplicates (by identity), returning the possibly-shortened slice. This is
// the normalization applied to every XPath step result.
func SortDocOrder(nodes []*Node) []*Node {
	if len(nodes) < 2 {
		return nodes
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		return CompareDocOrder(nodes[i], nodes[j]) < 0
	})
	out := nodes[:1]
	for _, n := range nodes[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// Walk visits n and every descendant (attributes included, before children)
// in document order, calling f on each. If f returns false the walk stops.
func Walk(n *Node, f func(*Node) bool) bool {
	if !f(n) {
		return false
	}
	for _, a := range n.Attrs {
		if !f(a) {
			return false
		}
	}
	for _, c := range n.Children {
		if !Walk(c, f) {
			return false
		}
	}
	return true
}

// CountNodes returns the number of nodes in the subtree (attributes included).
func CountNodes(n *Node) int {
	count := 0
	Walk(n, func(*Node) bool { count++; return true })
	return count
}
