// Package store is the daemon's persistent named-collection layer: XML
// collections loaded from a data directory, served as immutable
// copy-on-write-frozen snapshots so a reload can never race an in-flight
// evaluation — queries keep the snapshot they started with, and the swap to
// a new one is a single atomic pointer store.
//
// Layout: every subdirectory of the data directory is one collection, and
// every *.xml file inside it is one document. *.xml files at the top level
// form the default collection "db" (the eXist-style collection('/db')
// idiom the paper's deployments lean on). A collection's query-facing root
// is a synthetic
//
//	<collection name="NAME"><doc name="FILE">…</doc>…</collection>
//
// element wrapping a lazy COW clone of each document element, in file-name
// order, so `/collection/doc/…` paths and `//…` descendant scans both work
// and documents stay individually addressable via fn:doc("FILE") through
// the snapshot's Resolver.
//
// Loads go through a fault-injection hook and a jittered retry policy
// (internal/faultinject): transient storage faults are retried with
// bounded, deterministic backoff; a reload that still fails leaves the
// previous snapshot serving — stale data beats no data, the degradation
// the daemon's /readyz reports rather than hides.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lopsided/internal/faultinject"
	"lopsided/internal/xmltree"
	"lopsided/internal/xmltree/index"
)

// DefaultCollection is the name given to *.xml files at the top level of
// the data directory.
const DefaultCollection = "db"

// Doc is one loaded document inside a collection.
type Doc struct {
	// Name is the file base name without the .xml extension.
	Name string
	// Root is the document node, frozen under the COW contract: no caller
	// may mutate it or anything below it.
	Root *xmltree.Node
	// Bytes is the on-disk size of the source file.
	Bytes int64
}

// Collection is one named set of documents plus its synthetic query root.
type Collection struct {
	Name string
	Docs []Doc
	// Root is the frozen <collection name=…> element wrapping every
	// document element; it is the context item for queries against the
	// collection.
	Root *xmltree.Node
	// Bytes totals the on-disk size of the collection's files.
	Bytes int64
}

// Snapshot is one immutable generation of the store. All fields are
// read-only after construction; evaluations hold a *Snapshot for their
// whole lifetime and never observe a reload.
type Snapshot struct {
	// Version increments on every successful (re)load.
	Version int64
	// LoadedAt is when this snapshot finished loading.
	LoadedAt time.Time
	cols     map[string]*Collection
}

// Collection looks up a collection by name; a leading "/" is ignored so
// both "db" and "/db" resolve.
func (s *Snapshot) Collection(name string) (*Collection, bool) {
	c, ok := s.cols[strings.TrimPrefix(name, "/")]
	return c, ok
}

// Names lists the snapshot's collection names, sorted.
func (s *Snapshot) Names() []string {
	out := make([]string, 0, len(s.cols))
	for name := range s.cols {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Docs reports the total number of documents across all collections.
func (s *Snapshot) Docs() int {
	n := 0
	for _, c := range s.cols {
		n += len(c.Docs)
	}
	return n
}

// Resolver returns a fn:doc resolver over this snapshot. URIs resolve as
// "name" (within the given collection, which may be "") or
// "collection/name"; the ".xml" suffix is optional. The resolver is safe
// for concurrent use and pinned to this snapshot — a reload never changes
// what an in-flight evaluation's fn:doc sees.
func (s *Snapshot) Resolver(collection string) func(uri string) (*xmltree.Node, error) {
	return func(uri string) (*xmltree.Node, error) {
		col, name := collection, strings.TrimSuffix(uri, ".xml")
		if i := strings.LastIndex(name, "/"); i >= 0 {
			col, name = strings.Trim(name[:i], "/"), name[i+1:]
		}
		c, ok := s.Collection(col)
		if !ok {
			return nil, fmt.Errorf("doc(%q): unknown collection %q", uri, col)
		}
		for i := range c.Docs {
			if c.Docs[i].Name == name {
				return c.Docs[i].Root, nil
			}
		}
		return nil, fmt.Errorf("doc(%q): no document %q in collection %q", uri, name, c.Name)
	}
}

// Options configure a Store.
type Options struct {
	// Hook, when non-nil, runs before every file read with an operation
	// tag like `load("db/books.xml")`; returning an error fails (or, for
	// transient errors, retries) that load. This is the chaos harness's
	// injection point — wire an *faultinject.Injector's Hit here.
	Hook func(op string) error
	// Retry is the backoff policy for transient load faults. The zero
	// value means 3 attempts from a 1ms base (see faultinject.Backoff);
	// set Jitter/Seed for a bounded deterministic schedule.
	Retry faultinject.Backoff
}

// Store serves immutable snapshots of a data directory.
type Store struct {
	dir  string
	opts Options
	snap atomic.Pointer[Snapshot]
	vers atomic.Int64
}

// Open loads the data directory and returns a serving store. It fails when
// the directory is missing, holds no collections, or a document does not
// parse — a daemon should refuse to start on a bad corpus rather than
// serve an empty one.
func Open(dir string, opts Options) (*Store, error) {
	st := &Store{dir: dir, opts: opts}
	if err := st.Reload(); err != nil {
		return nil, err
	}
	return st, nil
}

// Snapshot returns the current immutable snapshot.
func (st *Store) Snapshot() *Snapshot { return st.snap.Load() }

// Dir reports the data directory the store serves.
func (st *Store) Dir() string { return st.dir }

// Reload rebuilds a snapshot from the data directory and atomically swaps
// it in. On failure the previous snapshot (if any) keeps serving and the
// error is returned. Transient faults from the load hook are retried under
// the configured backoff; permanent ones fail the reload at once.
func (st *Store) Reload() error {
	snap, err := st.load()
	if err != nil {
		return err
	}
	snap.Version = st.vers.Add(1)
	st.snap.Store(snap)
	return nil
}

func (st *Store) load() (*Snapshot, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	snap := &Snapshot{cols: make(map[string]*Collection)}
	var topLevel []string
	for _, e := range entries {
		if e.IsDir() {
			col, err := st.loadCollection(e.Name(), filepath.Join(st.dir, e.Name()))
			if err != nil {
				return nil, err
			}
			if col != nil {
				snap.cols[col.Name] = col
			}
			continue
		}
		if strings.HasSuffix(e.Name(), ".xml") {
			topLevel = append(topLevel, e.Name())
		}
	}
	if len(topLevel) > 0 {
		col, err := st.buildCollection(DefaultCollection, st.dir, topLevel)
		if err != nil {
			return nil, err
		}
		snap.cols[col.Name] = col
	}
	if len(snap.cols) == 0 {
		return nil, fmt.Errorf("store: no collections under %q (want subdirectories or top-level *.xml files)", st.dir)
	}
	snap.LoadedAt = time.Now()
	return snap, nil
}

func (st *Store) loadCollection(name, dir string) (*Collection, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: collection %q: %w", name, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, nil // an empty subdirectory is not a collection
	}
	return st.buildCollection(name, dir, files)
}

// buildCollection parses files (already filtered to *.xml, made
// deterministic by sorting) into a frozen Collection.
func (st *Store) buildCollection(name, dir string, files []string) (*Collection, error) {
	sort.Strings(files)
	col := &Collection{Name: name}
	root := xmltree.NewElement("collection")
	root.SetAttr("name", name)
	for _, f := range files {
		path := filepath.Join(dir, f)
		op := fmt.Sprintf("load(%q)", name+"/"+f)
		// Parse straight off the file through the streaming reader: the raw
		// bytes never exist as one in-memory string next to the tree. A
		// retried attempt re-opens the file, so a transient fault mid-parse
		// starts over from a clean scanner.
		var doc *xmltree.Node
		var bytes int64
		err := faultinject.Retry(st.opts.Retry, func() error {
			if st.opts.Hook != nil {
				if err := st.opts.Hook(op); err != nil {
					return err
				}
			}
			fh, e := os.Open(path)
			if e != nil {
				return e
			}
			defer fh.Close()
			if fi, e := fh.Stat(); e == nil {
				bytes = fi.Size()
			}
			doc, e = xmltree.ParseReader(fh)
			if e != nil {
				return fmt.Errorf("parse: %w", e)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("store: %s: %w", op, err)
		}
		// Freeze the parsed document so it can anchor a structural/value
		// index: fn:doc evaluations share one lazily-built index per
		// document per snapshot, across requests and tenants.
		xmltree.Freeze(doc)
		docName := strings.TrimSuffix(f, ".xml")
		col.Docs = append(col.Docs, Doc{Name: docName, Root: doc, Bytes: bytes})
		col.Bytes += bytes
		// Wrap a lazy COW clone of the document element: the clone
		// freezes the parsed tree (so fn:doc serves frozen documents) and
		// shares its storage with the collection root instead of copying.
		wrap := xmltree.NewElement("doc")
		wrap.SetAttr("name", docName)
		if de := doc.DocumentElement(); de != nil {
			wrap.AppendChild(de.Clone())
		}
		root.AppendChild(wrap)
	}
	// Freeze the collection root itself: concurrent evaluations get
	// memoized string/typed values, any constructor that copies from it
	// clones lazily, and the root becomes a valid index anchor — the first
	// `//name` or `[@attr = 'v']` probe against the collection builds its
	// structural/value index once, and every later request (any tenant)
	// shares it. A reload builds a fresh snapshot with fresh roots, so old
	// indexes are dropped atomically with the trees they describe.
	xmltree.Freeze(root)
	col.Root = root
	return col, nil
}

// Index returns the collection's structural/value index, building the
// DocIndex shell on first use (sections build lazily on first probe).
func (c *Collection) Index() (*index.DocIndex, bool) {
	return index.For(c.Root)
}

// IndexInfo describes one collection's index state for /stats.
type IndexInfo struct {
	Collection string `json:"collection"`
	// Built/AttrsBuilt report whether the structural and attribute-value
	// sections have been constructed (they build lazily on first probe).
	Built      bool `json:"built"`
	AttrsBuilt bool `json:"attrs_built"`
	Elements   int  `json:"elements,omitempty"`
	Names      int  `json:"names,omitempty"`
	Paths      int  `json:"paths,omitempty"`
	AttrKeys   int  `json:"attr_keys,omitempty"`
}

// IndexState reports, per collection, whether (and how much of) the
// snapshot's index state has been built, without forcing any builds. Sorted
// by collection name.
func (s *Snapshot) IndexState() []IndexInfo {
	out := make([]IndexInfo, 0, len(s.cols))
	for _, name := range s.Names() {
		c := s.cols[name]
		info := IndexInfo{Collection: name}
		if ix, ok := index.Peek(c.Root); ok {
			st := ix.Info()
			info.Built, info.AttrsBuilt = st.Built, st.AttrsBuilt
			info.Elements, info.Names = st.Elements, st.Names
			info.Paths, info.AttrKeys = st.Paths, st.AttrKeys
		}
		out = append(out, info)
	}
	return out
}
