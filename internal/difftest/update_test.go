package difftest

import (
	"strings"
	"testing"
)

// TestUpdateRandomSweep runs a fresh block of update seeds through the full
// matrix — every configuration's COW apply path against the eager deep-copy
// oracle — on every go test run. cmd/xqdiff -updates and CI run bigger
// sweeps.
func TestUpdateRandomSweep(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 30
	}
	for seed := int64(1); seed <= n; seed++ {
		c := GenerateUpdate(seed)
		if d := CheckUpdate(c, nil); d != nil {
			t.Fatalf("seed %d: %v", seed, d)
		}
	}
}

// TestUpdateGeneratorDeterminism: the same seed must always produce the
// same case, or pinned update seeds pin nothing.
func TestUpdateGeneratorDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := GenerateUpdate(seed), GenerateUpdate(seed)
		if a != b {
			t.Fatalf("seed %d not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestUpdateGeneratorParses: generated update programs must be
// syntactically valid — a generator drifting into parse errors silently
// loses all its coverage.
func TestUpdateGeneratorParses(t *testing.T) {
	base := Matrix()[0]
	for seed := int64(1); seed <= 300; seed++ {
		c := GenerateUpdate(seed)
		out := EvalUpdate(c, base, false)
		if out.Code == "XPST0003" {
			t.Errorf("seed %d generated an unparsable update program: %s\nsrc: %s", seed, out.Err, c.Src)
		}
	}
}

// TestUpdateOracleDetectsMutation proves the source-snapshot invariant has
// teeth: a hand-made evaluation that mutates its input must be flagged.
// (No engine path does, so the check is driven directly.)
func TestUpdateOracleDetectsMutation(t *testing.T) {
	c := UpdateCase{Seed: -1, Src: `delete (/r/item)[1]`, Doc: `<r><item n="1"/><item n="2"/></r>`, RootMode: "frozen"}
	base := EvalUpdate(c, Matrix()[0], true)
	if base.Code != "" {
		t.Fatalf("sanity: baseline errored: [%s] %s", base.Code, base.Err)
	}
	if strings.Contains(base.Out, `n="1"`) {
		t.Fatalf("sanity: delete did not delete: %q", base.Out)
	}
	for _, cfg := range Matrix() {
		got := EvalUpdate(c, cfg, false)
		if !base.equivalent(got) {
			t.Fatalf("%s disagrees with eager oracle: out=%q code=%q", cfg.Name, got.Out, got.Code)
		}
	}
}

// TestUpdateRegressionSeeds replays the pinned update seeds (the upd-*
// lines of seeds.txt) through the full matrix against the eager oracle.
func TestUpdateRegressionSeeds(t *testing.T) {
	ran := 0
	for name, seed := range loadSeeds(t) {
		if !strings.HasPrefix(name, "upd-") {
			continue
		}
		ran++
		t.Run(name, func(t *testing.T) {
			c := GenerateUpdate(seed)
			if d := CheckUpdate(c, nil); d != nil {
				t.Errorf("seed %d regressed: %v", seed, d)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no upd-* seeds pinned in seeds.txt")
	}
}
