package interp

import (
	"fmt"
	"strings"

	"lopsided/internal/xdm"
	"lopsided/internal/xmltree"
	"lopsided/internal/xquery/ast"
)

// This file implements the draft-2004 construction semantics the paper's
// "Treatment of Child Elements" section documents:
//
//   - each enclosed expression's atomic values are space-joined into text;
//   - node values are deep-copied into the new element;
//   - attribute nodes in LEADING content positions fold into the element's
//     attributes ("Saying that attribute nodes presented to the element
//     constructor as children become attributes is certainly a simple way
//     to arrange it");
//   - an attribute node after non-attribute content is an error (XQTY0024);
//   - duplicate attribute names resolve per the configured policy.

// evalDirElem evaluates a direct element constructor.
func (c *evalCtx) evalDirElem(n *ast.DirElem) (xdm.Sequence, error) {
	el := xmltree.NewElement(n.Name)
	if err := c.chargeNodes(1); err != nil {
		return nil, errAt(err, n.Pos())
	}
	for _, attr := range n.Attrs {
		val, err := c.evalAttrValue(attr)
		if err != nil {
			return nil, err
		}
		if err := c.chargeNodes(1); err != nil {
			return nil, errAt(err, n.Pos())
		}
		if err := c.chargeBytes(len(val)); err != nil {
			return nil, errAt(err, n.Pos())
		}
		el.SetAttr(attr.Name, val)
	}
	items, err := c.contentItems(n)
	if err != nil {
		return nil, err
	}
	if err := c.fillElement(el, items, n.Pos()); err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.NewNode(el)), nil
}

// evalAttrValue concatenates the literal and enclosed parts of a direct
// attribute value; each enclosed expression's sequence is atomized and
// space-joined (attribute value template semantics).
func (c *evalCtx) evalAttrValue(attr ast.DirAttr) (string, error) {
	var b strings.Builder
	for _, part := range attr.Parts {
		if lit, ok := part.(*ast.StringLit); ok {
			b.WriteString(lit.Value)
			continue
		}
		v, err := c.eval(part)
		if err != nil {
			return "", err
		}
		b.WriteString(xdm.Atomize(v).StringJoin())
	}
	return b.String(), nil
}

// contentItem is one element of the content sequence: either a text run or
// an evaluated sequence from an enclosed expression / nested constructor.
type contentItem struct {
	text  string
	isSeq bool
	seq   xdm.Sequence
}

// contentItems evaluates a direct constructor's content list, applying
// boundary-whitespace stripping to unprotected literal runs.
func (c *evalCtx) contentItems(n *ast.DirElem) ([]contentItem, error) {
	var items []contentItem
	for i, expr := range n.Content {
		if lit, ok := expr.(*ast.StringLit); ok && i < len(n.LiteralText) {
			text := lit.Value
			if n.LiteralText[i] && !c.ip.mod.BoundarySpacePreserve && strings.TrimSpace(text) == "" {
				continue // boundary whitespace stripped (draft default)
			}
			items = append(items, contentItem{text: text})
			continue
		}
		v, err := c.eval(expr)
		if err != nil {
			return nil, err
		}
		items = append(items, contentItem{isSeq: true, seq: v})
	}
	return items, nil
}

// fillElement applies the content sequence to a freshly built element.
func (c *evalCtx) fillElement(el *xmltree.Node, items []contentItem, pos ast.Pos) error {
	sawContent := false // any non-attribute content so far
	appendText := func(s string) error {
		if s == "" {
			return nil
		}
		if err := c.chargeBytes(len(s)); err != nil {
			return errAt(err, pos)
		}
		if k := len(el.Children); k > 0 && el.Children[k-1].Kind == xmltree.TextNode {
			el.Children[k-1].Data += s
			return nil
		}
		if err := c.chargeNodes(1); err != nil {
			return errAt(err, pos)
		}
		el.AppendChild(xmltree.NewText(s))
		return nil
	}
	// appendCopy deep-copies a content node into el, charging the clone's
	// full node count against the budget before the copy is made.
	appendCopy := func(node *xmltree.Node) error {
		if err := c.chargeNodes(xmltree.CountNodes(node)); err != nil {
			return errAt(err, pos)
		}
		el.AppendChild(node.Clone())
		return nil
	}
	for _, item := range items {
		if !item.isSeq {
			if err := appendText(item.text); err != nil {
				return err
			}
			sawContent = true
			continue
		}
		// One enclosed expression: runs of adjacent atomics join with
		// single spaces into one text node; nodes are copied.
		pendingAtomics := []string{}
		flushAtomics := func() error {
			if len(pendingAtomics) > 0 {
				if err := appendText(strings.Join(pendingAtomics, " ")); err != nil {
					return err
				}
				pendingAtomics = pendingAtomics[:0]
				sawContent = true
			}
			return nil
		}
		for _, it := range item.seq {
			node, isNode := xdm.IsNode(it)
			if !isNode {
				pendingAtomics = append(pendingAtomics, it.StringValue())
				continue
			}
			if err := flushAtomics(); err != nil {
				return err
			}
			switch node.Kind {
			case xmltree.AttributeNode:
				if sawContent {
					// The paper: "if the attribute value is in the wrong
					// position (after a non-attribute), it will cause an
					// error".
					return &Error{Code: "XQTY0024", Pos: pos,
						Msg: fmt.Sprintf("attribute %q follows non-attribute content in element constructor", node.Name)}
				}
				if err := c.foldAttribute(el, node, pos); err != nil {
					return err
				}
			case xmltree.DocumentNode:
				for _, kid := range node.Children {
					if err := appendCopy(kid); err != nil {
						return err
					}
				}
				sawContent = true
			case xmltree.TextNode:
				if err := appendText(node.Data); err != nil {
					return err
				}
				sawContent = true
			default:
				if err := appendCopy(node); err != nil {
					return err
				}
				sawContent = true
			}
		}
		if err := flushAtomics(); err != nil {
			return err
		}
	}
	return nil
}

// foldAttribute attaches a computed attribute node to el, resolving
// duplicates per the configured policy.
func (c *evalCtx) foldAttribute(el *xmltree.Node, attr *xmltree.Node, pos ast.Pos) error {
	if err := c.chargeNodes(1); err != nil {
		return errAt(err, pos)
	}
	copied := attr.Clone()
	for i, existing := range el.Attrs {
		if existing.Name != copied.Name {
			continue
		}
		switch c.ip.opts.DupAttr {
		case DupAttrLastWins:
			copied.Parent = el
			el.Attrs[i] = copied
			return nil
		case DupAttrFirstWins:
			return nil
		case DupAttrGalaxBug:
			// Keep both — reproducing the bug the paper observed:
			// "though Galax did not honor this as of the time of writing".
			copied.Parent = el
			el.Attrs = append(el.Attrs, copied)
			return nil
		case DupAttrError:
			return &Error{Code: "XQDY0025", Pos: pos,
				Msg: fmt.Sprintf("duplicate attribute name %q in constructed element", copied.Name)}
		}
	}
	el.AttachAttr(copied)
	return nil
}

// ---- Computed constructors ----

func (c *evalCtx) constructorName(static string, nameExpr ast.Expr, pos ast.Pos) (string, error) {
	if static != "" {
		return static, nil
	}
	v, err := c.eval(nameExpr)
	if err != nil {
		return "", err
	}
	it, err := xdm.Atomize(v).One()
	if err != nil {
		return "", errAt(err, pos)
	}
	name := strings.TrimSpace(it.StringValue())
	if name == "" || strings.ContainsAny(name, " \t\r\n<>&\"'") {
		return "", &Error{Code: "XQDY0074", Pos: pos, Msg: fmt.Sprintf("invalid computed name %q", name)}
	}
	return name, nil
}

func (c *evalCtx) evalCompElem(n *ast.CompElem) (xdm.Sequence, error) {
	name, err := c.constructorName(n.Name, n.NameExpr, n.Pos())
	if err != nil {
		return nil, err
	}
	el := xmltree.NewElement(name)
	if err := c.chargeNodes(1); err != nil {
		return nil, errAt(err, n.Pos())
	}
	if n.Content != nil {
		v, err := c.eval(n.Content)
		if err != nil {
			return nil, err
		}
		if err := c.fillElement(el, []contentItem{{isSeq: true, seq: v}}, n.Pos()); err != nil {
			return nil, err
		}
	}
	return xdm.Singleton(xdm.NewNode(el)), nil
}

func (c *evalCtx) evalCompAttr(n *ast.CompAttr) (xdm.Sequence, error) {
	name, err := c.constructorName(n.Name, n.NameExpr, n.Pos())
	if err != nil {
		return nil, err
	}
	val := ""
	if n.Content != nil {
		v, err := c.eval(n.Content)
		if err != nil {
			return nil, err
		}
		val = xdm.Atomize(v).StringJoin()
	}
	if err := c.chargeNodes(1); err != nil {
		return nil, errAt(err, n.Pos())
	}
	if err := c.chargeBytes(len(val)); err != nil {
		return nil, errAt(err, n.Pos())
	}
	return xdm.Singleton(xdm.NewNode(xmltree.NewAttr(name, val))), nil
}

func (c *evalCtx) evalCompText(n *ast.CompText) (xdm.Sequence, error) {
	if n.Content == nil {
		return xdm.Empty, nil
	}
	v, err := c.eval(n.Content)
	if err != nil {
		return nil, err
	}
	if v.IsEmpty() {
		return xdm.Empty, nil
	}
	data := xdm.Atomize(v).StringJoin()
	if err := c.chargeNodes(1); err != nil {
		return nil, errAt(err, n.Pos())
	}
	if err := c.chargeBytes(len(data)); err != nil {
		return nil, errAt(err, n.Pos())
	}
	return xdm.Singleton(xdm.NewNode(xmltree.NewText(data))), nil
}

func (c *evalCtx) evalCompComment(n *ast.CompComment) (xdm.Sequence, error) {
	data := ""
	if n.Content != nil {
		v, err := c.eval(n.Content)
		if err != nil {
			return nil, err
		}
		data = xdm.Atomize(v).StringJoin()
	}
	if err := c.chargeNodes(1); err != nil {
		return nil, errAt(err, n.Pos())
	}
	if err := c.chargeBytes(len(data)); err != nil {
		return nil, errAt(err, n.Pos())
	}
	return xdm.Singleton(xdm.NewNode(xmltree.NewComment(data))), nil
}

func (c *evalCtx) evalCompPI(n *ast.CompPI) (xdm.Sequence, error) {
	data := ""
	if n.Content != nil {
		v, err := c.eval(n.Content)
		if err != nil {
			return nil, err
		}
		data = xdm.Atomize(v).StringJoin()
	}
	if err := c.chargeNodes(1); err != nil {
		return nil, errAt(err, n.Pos())
	}
	if err := c.chargeBytes(len(data)); err != nil {
		return nil, errAt(err, n.Pos())
	}
	return xdm.Singleton(xdm.NewNode(xmltree.NewPI(n.Target, data))), nil
}

func (c *evalCtx) evalCompDoc(n *ast.CompDoc) (xdm.Sequence, error) {
	doc := xmltree.NewDocument()
	if err := c.chargeNodes(1); err != nil {
		return nil, errAt(err, n.Pos())
	}
	if n.Content != nil {
		v, err := c.eval(n.Content)
		if err != nil {
			return nil, err
		}
		// Document content: copy nodes; atomics become text; attributes
		// are illegal at document level.
		var pending []string
		flush := func() error {
			if len(pending) > 0 {
				text := strings.Join(pending, " ")
				if err := c.chargeNodes(1); err != nil {
					return errAt(err, n.Pos())
				}
				if err := c.chargeBytes(len(text)); err != nil {
					return errAt(err, n.Pos())
				}
				doc.AppendChild(xmltree.NewText(text))
				pending = nil
			}
			return nil
		}
		for _, it := range v {
			node, isNode := xdm.IsNode(it)
			if !isNode {
				pending = append(pending, it.StringValue())
				continue
			}
			if err := flush(); err != nil {
				return nil, err
			}
			switch node.Kind {
			case xmltree.AttributeNode:
				return nil, &Error{Code: "XPTY0004", Pos: n.Pos(),
					Msg: "attribute node in document constructor content"}
			case xmltree.DocumentNode:
				for _, kid := range node.Children {
					if err := c.chargeNodes(xmltree.CountNodes(kid)); err != nil {
						return nil, errAt(err, n.Pos())
					}
					doc.AppendChild(kid.Clone())
				}
			default:
				if err := c.chargeNodes(xmltree.CountNodes(node)); err != nil {
					return nil, errAt(err, n.Pos())
				}
				doc.AppendChild(node.Clone())
			}
		}
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return xdm.Singleton(xdm.NewNode(doc)), nil
}
