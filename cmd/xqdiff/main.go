// Command xqdiff is the differential conformance harness CLI: it generates
// seeded random queries and evaluates each under every execution
// configuration of the engine (optimizer levels O0-O2 × fresh/cached plans ×
// traced/untraced evaluation, plus the Galax-era trace-elimination mode),
// reporting any configuration pair that disagrees on the serialized result
// or the error code.
//
//	xqdiff -n 1000                 # sweep seeds 1..1000 over the full matrix
//	xqdiff -n 5000 -jobs 4         # same sweep across 4 worker goroutines
//	xqdiff -seed 485               # replay one numeric seed
//	xqdiff -seed ci -n 500         # named seed: start point hashed from the name
//	xqdiff -config O0,O2+cache     # restrict the comparison to two configs
//	xqdiff -seed 485 -minimize     # shrink a divergence to a minimal reproducer
//	xqdiff -updates -n 1000        # sweep update programs: every config's COW
//	                               # apply vs the eager deep-copy oracle
//	xqdiff -list-configs           # print the configuration matrix
//
// On a divergence, xqdiff prints both outcomes, the query and document, and
// the EXPLAIN dumps of the two disagreeing configurations side by side.
//
// Exit codes: 0 no divergence, 1 divergence found, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lopsided/internal/difftest"
)

func main() {
	seedFlag := flag.String("seed", "1", "start seed: a number, or a name (e.g. \"ci\") hashed to one")
	n := flag.Int("n", 1, "how many consecutive seeds to sweep")
	configFlag := flag.String("config", "", "comma-separated configuration names to compare (default: full matrix); first is the baseline")
	minimize := flag.Bool("minimize", false, "shrink each divergence to a minimal reproducer")
	budget := flag.Bool("budget", true, "also check step-budget trip parity within each optimizer level")
	updates := flag.Bool("updates", false, "generate update programs instead of queries; compares every configuration's copy-on-write apply against the eager deep-copy oracle (ignores -budget and -minimize)")
	jobs := flag.Int("jobs", 1, "parallel workers for the sweep (divergence reports stay in seed order)")
	quiet := flag.Bool("q", false, "only print divergences and the summary")
	listConfigs := flag.Bool("list-configs", false, "print the configuration matrix and exit")
	flag.Parse()

	if *listConfigs {
		for _, cfg := range difftest.Matrix() {
			fmt.Println(cfg.Name)
		}
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: xqdiff [-seed n|name] [-n count] [-config a,b] [-minimize]")
		os.Exit(2)
	}

	start, err := resolveSeed(*seedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqdiff:", err)
		os.Exit(2)
	}
	configs, err := resolveConfigs(*configFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqdiff:", err)
		os.Exit(2)
	}
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "xqdiff: -n must be at least 1")
		os.Exit(2)
	}

	// The sweep itself parallelizes cleanly: each seed generates its own
	// case and the engine is safe for concurrent compilation/evaluation
	// (the workers share the process-wide plan cache). Divergences are
	// collected per-index and reported afterwards in seed order, so the
	// output is identical at any -jobs value.
	check := func(i int) *difftest.Divergence {
		if *updates {
			return difftest.CheckUpdate(difftest.GenerateUpdate(start+int64(i)), configs)
		}
		c := difftest.Generate(start + int64(i))
		d := difftest.Check(c, configs)
		if d == nil && *budget {
			d = difftest.CheckBudgeted(c)
		}
		return d
	}
	divs := make([]*difftest.Divergence, *n)
	workers := *jobs
	if workers < 1 {
		workers = 1
	}
	if workers > *n {
		workers = *n
	}
	if workers == 1 {
		for i := range divs {
			divs[i] = check(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(divs) {
						return
					}
					divs[i] = check(i)
				}
			}()
		}
		wg.Wait()
	}

	divergences := 0
	for _, d := range divs {
		if d == nil {
			continue
		}
		divergences++
		report(d, configs, *minimize && !*updates, *updates)
	}
	if !*quiet || divergences > 0 {
		fmt.Printf("xqdiff: %d seeds from %d, %d configurations, %d divergence(s)\n",
			*n, start, len(effectiveConfigs(configs)), divergences)
	}
	if divergences > 0 {
		os.Exit(1)
	}
}

// resolveSeed accepts a decimal seed or hashes any other string into one, so
// CI can pin a stable named starting point ("-seed ci") without coordinating
// numbers.
func resolveSeed(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("-seed must not be empty")
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v, nil
	}
	h := fnv.New64a()
	h.Write([]byte(s))
	// Keep it positive and leave headroom so seed+n cannot overflow.
	return int64(h.Sum64() % (1 << 62)), nil
}

func resolveConfigs(s string) ([]difftest.Config, error) {
	if s == "" {
		return nil, nil // Check defaults to the full matrix
	}
	names := strings.Split(s, ",")
	if len(names) < 2 {
		return nil, fmt.Errorf("-config wants at least two comma-separated names, got %q", s)
	}
	var out []difftest.Config
	for _, name := range names {
		cfg, ok := difftest.FindConfig(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown configuration %q (see -list-configs)", name)
		}
		out = append(out, cfg)
	}
	return out, nil
}

func effectiveConfigs(configs []difftest.Config) []difftest.Config {
	if len(configs) < 2 {
		return difftest.Matrix()
	}
	return configs
}

// report prints one divergence: both outcomes, optionally the minimized
// source, and (for query cases) the two EXPLAIN dumps side by side.
func report(d *difftest.Divergence, configs []difftest.Config, minimize, updates bool) {
	fmt.Printf("DIVERGENCE seed=%d policy=%v\n", d.Case.Seed, d.Case.Policy)
	fmt.Printf("  query: %s\n", d.Case.Src)
	fmt.Printf("  doc:   %s\n", d.Case.Doc)
	for _, o := range []difftest.Outcome{d.A, d.B} {
		if o.Code != "" {
			fmt.Printf("  %-16s error [%s] %s\n", o.Config.Name+":", o.Code, o.Err)
		} else {
			fmt.Printf("  %-16s %q\n", o.Config.Name+":", o.Out)
		}
	}
	if minimize {
		src, steps := difftest.Minimize(d.Case.Seed, configs)
		if steps > 0 {
			fmt.Printf("  minimized (%d steps): %s\n", steps, src)
		}
	}
	if updates {
		return // EXPLAIN below compiles the source as a query
	}
	fmt.Println(sideBySide(
		d.A.Config.Name, difftest.Explain(d.Case, d.A.Config),
		d.B.Config.Name, difftest.Explain(d.Case, d.B.Config)))
}

// sideBySide renders two EXPLAIN dumps in two columns.
func sideBySide(nameA, a, nameB, b string) string {
	la := strings.Split(strings.TrimRight(a, "\n"), "\n")
	lb := strings.Split(strings.TrimRight(b, "\n"), "\n")
	width := len(nameA)
	for _, l := range la {
		if len(l) > width {
			width = len(l)
		}
	}
	var out strings.Builder
	fmt.Fprintf(&out, "  %-*s | %s\n", width, nameA, nameB)
	fmt.Fprintf(&out, "  %s-+-%s\n", strings.Repeat("-", width), strings.Repeat("-", width))
	for i := 0; i < len(la) || i < len(lb); i++ {
		var l, r string
		if i < len(la) {
			l = la[i]
		}
		if i < len(lb) {
			r = lb[i]
		}
		fmt.Fprintf(&out, "  %-*s | %s\n", width, l, r)
	}
	return out.String()
}
