package interp

import (
	"strings"

	"lopsided/internal/xdm"
	"lopsided/internal/xmltree"
	"lopsided/internal/xmltree/index"
	"lopsided/internal/xquery/ast"
)

// Path expressions compile into pathPlans: the axis function and node test
// of every step are resolved to direct funcs at compile time, and the
// primaries/predicates are closure-compiled. The runtime walk mutates the
// context focus in place (saving and restoring around each use) instead of
// copying the whole evaluation context per item.

// predPlan is one compiled predicate.
type predPlan struct {
	expr compiledExpr
	pos  ast.Pos
}

// accessPlan is the compiled form of the optimizer's access-path decision
// for an axis step. The probe is advisory: when the context node's tree has
// no usable index the step falls back to the axis walk, producing identical
// results (the optimizer only plans shapes where that equivalence holds).
type accessPlan struct {
	kind ast.AccessKind
	// name is the element name the step selects; desc distinguishes the
	// descendant probe from the child probe.
	name string
	desc bool
	// attrName/attrValue carry a folded [@attr = 'v'] predicate. The walk
	// fallback applies it existentially over every same-named attribute
	// (duplicate-attribute trees make first-match wrong).
	attrName, attrValue string
	hasAttr             bool
}

// probe tries to serve the step's node set from the context tree's index.
// served is false when no index is available (unfrozen tree, foreign node,
// or an unhelpful synopsis answer) and the caller must walk.
func (a *accessPlan) probe(ctx *xmltree.Node) (nodes []*xmltree.Node, served bool) {
	ix, ok := index.For(ctx.Root())
	if !ok {
		return nil, false
	}
	switch {
	case a.kind == ast.AccessSynopsisPrune:
		if exists, answered := ix.ChildMayExist(ctx, a.name); answered && !exists {
			return nil, true
		}
		return nil, false
	case a.desc && a.hasAttr:
		return ix.DescendantsAttrEq(ctx, a.name, a.attrName, a.attrValue)
	case a.desc:
		return ix.Descendants(ctx, a.name)
	case a.hasAttr:
		return ix.ChildrenAttrEq(ctx, a.name, a.attrName, a.attrValue)
	}
	return nil, false
}

// stepPlan is one compiled path step: an axis step (axisFunc+test) or a
// filter step (primary non-nil), each with predicates.
type stepPlan struct {
	axisFunc func(*xmltree.Node) []*xmltree.Node
	test     func(*xmltree.Node) bool
	access   *accessPlan
	primary  compiledExpr
	preds    []predPlan
	pos      ast.Pos
}

type pathPlan struct {
	root  ast.PathRoot
	steps []stepPlan
	pos   ast.Pos
}

func (cp *compiler) compilePath(n *ast.PathExpr) compiledExpr {
	p := &pathPlan{root: n.Root, pos: n.Pos()}
	for _, st := range n.Steps {
		p.steps = append(p.steps, cp.compileStep(st))
	}
	// A single filter step with no rooting is a standalone filter
	// expression, not a path: no homogeneity requirement, no document-order
	// sorting.
	if n.Root == ast.RootNone && len(n.Steps) == 1 && n.Steps[0].Primary != nil {
		sp := &p.steps[0]
		return sp.eval
	}
	return p.eval
}

func (cp *compiler) compileStep(st ast.Step) stepPlan {
	sp := stepPlan{pos: st.P}
	if st.Primary != nil {
		sp.primary = cp.compile(st.Primary)
	} else {
		sp.axisFunc = axisFunc(st.Axis)
		sp.test = makeTest(st.Test, st.Axis)
		sp.access = cp.compileAccess(st)
	}
	for _, pr := range st.Preds {
		sp.preds = append(sp.preds, predPlan{expr: cp.compile(pr), pos: pr.Pos()})
	}
	return sp
}

// compileAccess lowers the optimizer's access-path decision onto the step
// and records it as a plan note for EXPLAIN. Tree walks compile to a nil
// accessPlan (the default dispatch); unplanned steps (O0, or paths built
// outside the optimizer) stay silent tree walks.
func (cp *compiler) compileAccess(st ast.Step) *accessPlan {
	ap := st.Access
	if ap == nil {
		return nil
	}
	suffix := ""
	if ap.Reason != "" {
		suffix = " (" + ap.Reason + ")"
	}
	cp.note(st.P, "access path %s %s::%s%s", ap.Kind, st.Axis, st.Test.Name, suffix)
	if ap.Kind == ast.AccessTreeWalk {
		return nil
	}
	return &accessPlan{
		kind:      ap.Kind,
		name:      st.Test.Name,
		desc:      st.Axis == ast.AxisDescendant,
		attrName:  ap.AttrName,
		attrValue: ap.AttrValue,
		hasAttr:   ap.AttrName != "",
	}
}

func axisFunc(axis ast.Axis) func(*xmltree.Node) []*xmltree.Node {
	switch axis {
	case ast.AxisChild:
		// Read the child list in place: stepPlan.eval only iterates the
		// returned slice, so xmltree.ChildAxis's defensive copy is wasted.
		return func(n *xmltree.Node) []*xmltree.Node {
			if n.Kind != xmltree.ElementNode && n.Kind != xmltree.DocumentNode {
				return nil
			}
			return n.Children()
		}
	case ast.AxisDescendant:
		return xmltree.DescendantAxis
	case ast.AxisAttribute:
		return func(n *xmltree.Node) []*xmltree.Node {
			if n.Kind != xmltree.ElementNode {
				return nil
			}
			return n.Attrs()
		}
	case ast.AxisSelf:
		return xmltree.SelfAxis
	case ast.AxisDescendantOrSelf:
		return xmltree.DescendantOrSelfAxis
	case ast.AxisFollowingSibling:
		return xmltree.FollowingSiblingAxis
	case ast.AxisFollowing:
		return xmltree.FollowingAxis
	case ast.AxisParent:
		return xmltree.ParentAxis
	case ast.AxisAncestor:
		return xmltree.AncestorAxis
	case ast.AxisPrecedingSibling:
		return xmltree.PrecedingSiblingAxis
	case ast.AxisPreceding:
		return xmltree.PrecedingAxis
	case ast.AxisAncestorOrSelf:
		return xmltree.AncestorOrSelfAxis
	}
	return func(*xmltree.Node) []*xmltree.Node { return nil }
}

// makeTest compiles a node test into a direct matcher. Name tests select
// the axis's principal node kind: attributes on the attribute axis,
// elements elsewhere.
func makeTest(test ast.NodeTest, axis ast.Axis) func(*xmltree.Node) bool {
	if test.Kind != nil {
		kind := test.Kind
		return func(n *xmltree.Node) bool { return kind.MatchesItem(xdm.NewNode(n)) }
	}
	principal := xmltree.ElementNode
	if axis == ast.AxisAttribute {
		principal = xmltree.AttributeNode
	}
	name := test.Name
	switch {
	case name == "*":
		return func(n *xmltree.Node) bool { return n.Kind == principal }
	case strings.HasSuffix(name, ":*"):
		prefix := strings.TrimSuffix(name, ":*")
		return func(n *xmltree.Node) bool { return n.Kind == principal && n.Prefix() == prefix }
	case strings.HasPrefix(name, "*:"):
		local := strings.TrimPrefix(name, "*:")
		return func(n *xmltree.Node) bool { return n.Kind == principal && n.LocalName() == local }
	}
	return func(n *xmltree.Node) bool { return n.Kind == principal && n.Name == name }
}

// eval evaluates the compiled path: optional rooting, then steps, each
// applied to every item of the previous step's result with a fresh focus.
func (p *pathPlan) eval(c *evalCtx) (xdm.Sequence, error) {
	var current xdm.Sequence
	switch p.root {
	case ast.RootNone:
		// First step runs against the current focus (axis steps) or no
		// input at all (filter steps such as variables and literals).
		return p.evalSteps(c, nil)
	case ast.RootSlash, ast.RootSlashSlash:
		it, err := c.FocusItem()
		if err != nil {
			return nil, errAt(err, p.pos)
		}
		node, ok := xdm.IsNode(it)
		if !ok {
			return nil, &Error{Code: "XPDY0050", Pos: p.pos, Msg: "'/' with a non-node context item"}
		}
		root := node.Root()
		current = xdm.Singleton(xdm.NewNode(root))
		if p.root == ast.RootSlashSlash {
			// Leading // is /descendant-or-self::node()/ before the steps.
			current = xdm.FromNodes(xmltree.DescendantOrSelfAxis(root))
		}
		if len(p.steps) == 0 {
			return current, nil
		}
		return p.evalSteps(c, current)
	}
	return current, nil
}

// evalSteps applies each step in order. input nil means "use current focus
// for axis steps, nothing for filter steps" (the first step of a relative
// path).
func (p *pathPlan) evalSteps(c *evalCtx, input xdm.Sequence) (xdm.Sequence, error) {
	current := input
	saved := c.focus
	for si := range p.steps {
		sp := &p.steps[si]
		var result xdm.Sequence
		if current == nil {
			// First step of a relative path: axis steps need the enclosing
			// focus, filter primaries are focus-free.
			if sp.primary == nil && !c.focus.set {
				return nil, &Error{Code: "XPDY0002", Pos: sp.pos,
					Msg: "axis step with no context item"}
			}
			var err error
			result, err = sp.eval(c)
			if err != nil {
				return nil, err
			}
		} else {
			for pos, it := range current {
				c.focus = focus{item: it, pos: pos + 1, size: len(current), set: true}
				part, err := sp.eval(c)
				if err != nil {
					c.focus = saved
					return nil, err
				}
				// Appending (not Concat) keeps one growing backing array per
				// step instead of re-copying the accumulator per context item.
				result = append(result, part...)
			}
			c.focus = saved
		}
		// Normalize node results into document order; mixed node/atomic
		// results are illegal; pure atomic results are allowed only in the
		// final step.
		hasNode, hasAtomic := classify(result)
		switch {
		case hasNode && hasAtomic:
			return nil, &Error{Code: "XPTY0018", Pos: sp.pos,
				Msg: "path step produced both nodes and atomic values"}
		case hasNode:
			sorted, err := xdm.SortDoc(result)
			if err != nil {
				return nil, errAt(err, sp.pos)
			}
			result = sorted
		case hasAtomic && si < len(p.steps)-1:
			return nil, &Error{Code: "XPTY0019", Pos: p.steps[si+1].pos,
				Msg: "path step applied to atomic values"}
		}
		current = result
	}
	return current, nil
}

func classify(s xdm.Sequence) (hasNode, hasAtomic bool) {
	for _, it := range s {
		if _, ok := xdm.IsNode(it); ok {
			hasNode = true
		} else {
			hasAtomic = true
		}
	}
	return hasNode, hasAtomic
}

// eval evaluates one step against the current focus.
func (sp *stepPlan) eval(c *evalCtx) (xdm.Sequence, error) {
	if sp.primary != nil {
		prim, err := sp.primary(c)
		if err != nil {
			return nil, err
		}
		return sp.applyPredicates(c, prim)
	}
	it, err := c.FocusItem()
	if err != nil {
		return nil, errAt(err, sp.pos)
	}
	node, ok := xdm.IsNode(it)
	if !ok {
		return nil, &Error{Code: "XPTY0019", Pos: sp.pos,
			Msg: "axis step applied to atomic value " + it.TypeName()}
	}
	if sp.access != nil {
		if nodes, served := sp.access.probe(node); served {
			// Index lists are in document order (= forward axis order), and
			// the name (and any folded attribute) condition is already
			// satisfied; remaining predicates still apply.
			out := make(xdm.Sequence, 0, len(nodes))
			for _, cand := range nodes {
				out = append(out, xdm.NewNode(cand))
			}
			return sp.applyPredicates(c, out)
		}
	}
	nodes := sp.axisFunc(node)
	// Predicates see positions in axis order (reverse axes count backward
	// from the context node), which is already the order of `out`.
	out := make(xdm.Sequence, 0, len(nodes))
	for _, cand := range nodes {
		if sp.test(cand) {
			if sp.access != nil && sp.access.hasAttr &&
				!index.AttrAnyEq(cand, sp.access.attrName, sp.access.attrValue) {
				continue // folded [@attr = 'v'] applies on the walk fallback too
			}
			out = append(out, xdm.NewNode(cand))
		}
	}
	return sp.applyPredicates(c, out)
}

// applyPredicates filters seq through each predicate in turn. A predicate
// evaluating to a singleton numeric value selects by position; anything
// else filters by effective boolean value.
func (sp *stepPlan) applyPredicates(c *evalCtx, seq xdm.Sequence) (xdm.Sequence, error) {
	if len(sp.preds) == 0 {
		return seq, nil
	}
	saved := c.focus
	for pi := range sp.preds {
		pred := &sp.preds[pi]
		var kept xdm.Sequence
		size := len(seq)
		for i, it := range seq {
			pos := i + 1
			c.focus = focus{item: it, pos: pos, size: size, set: true}
			pv, err := pred.expr(c)
			if err != nil {
				c.focus = saved
				return nil, err
			}
			keep, err := predicateHolds(pv, pos)
			if err != nil {
				c.focus = saved
				return nil, errAt(err, pred.pos)
			}
			if keep {
				kept = append(kept, it)
			}
		}
		seq = kept
	}
	c.focus = saved
	return seq, nil
}

func predicateHolds(pv xdm.Sequence, pos int) (bool, error) {
	if len(pv) == 1 && xdm.IsNumeric(pv[0]) {
		return xdm.NumberOf(pv[0]) == float64(pos), nil
	}
	return xdm.EffectiveBool(pv)
}
