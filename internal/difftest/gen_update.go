package difftest

// gen_update.go extends the differential harness to the update sublanguage.
// The generator builds seeded random update programs — insert/delete/
// replace/rename statements plus for-where iteration, over the same fixed
// document shape as the query generator — and the oracle runs each under
// every configuration of the matrix TWICE: the copy-on-write apply path
// (the production one) and the eager deep-copy reference path
// (xq.WithEagerCopyApply). All outcomes must agree on the serialized result
// and the error code, and the input snapshot must serialize identically
// before and after every transform — an update that leaks a mutation into
// its source tree is a divergence even when the result looks right.
//
// RootMode varies how the input tree is prepared (frozen / a lazy clone of
// a frozen tree / a plain unfrozen parse), because the COW apply path takes
// different branches for each: frozen roots share structure with the
// result, clones carry live src pointers, plain roots are frozen on entry.

import (
	"fmt"
	"math/rand"

	"lopsided/xq"
)

// UpdateCase is one generated update-differential case.
type UpdateCase struct {
	// Seed reproduces the case through GenerateUpdate.
	Seed int64
	// Src is the update-program source.
	Src string
	// Doc is the context document's markup.
	Doc string
	// RootMode is how the input tree is prepared: "frozen", "clone", or
	// "plain".
	RootMode string
	// Policy is the duplicate-attribute policy (constructors inside update
	// content are subject to it like any other constructor).
	Policy xq.DupAttrPolicy
}

// asCase shapes the update case for Divergence reports.
func (c UpdateCase) asCase() Case {
	return Case{Seed: c.Seed, Src: c.Src, Doc: c.Doc, Policy: c.Policy}
}

// GenerateUpdate builds the update-differential case for a seed. The same
// seed always yields the same case.
func GenerateUpdate(seed int64) UpdateCase {
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	n := 1 + g.rng.Intn(3)
	var b []any
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ";\n")
		}
		b = append(b, g.updateStmt(0))
	}
	src := (&gnode{parts: b}).Source()
	policies := []xq.DupAttrPolicy{
		xq.DupAttrLastWins, xq.DupAttrFirstWins, xq.DupAttrGalaxBug, xq.DupAttrError,
	}
	return UpdateCase{
		Seed:     seed,
		Src:      src,
		Doc:      g.document(),
		RootMode: g.pick([]string{"frozen", "clone", "plain"}),
		Policy:   policies[g.rng.Intn(len(policies))],
	}
}

// updateStmt generates one update statement.
func (g *gen) updateStmt(depth int) *gnode {
	switch g.rng.Intn(8) {
	case 0, 1:
		placement := g.pick([]string{"into", "before", "after"})
		return lit("insert ", g.updContent(depth), " ", placement, " ", g.updTarget())
	case 2:
		return lit("delete ", g.updTarget())
	case 3:
		return lit("replace ", g.updTarget(), " with ", g.updContent(depth))
	case 4:
		name := g.pick([]string{`"nn"`, `"item"`, `concat("k", "2")`, `"bad name"`})
		return lit("rename ", g.updTarget(), " as ", name)
	case 5:
		// Attribute-flavored statements: attr targets and attr content.
		switch g.rng.Intn(3) {
		case 0:
			return lit("delete ", g.updAttrTarget())
		case 1:
			return lit("replace ", g.updAttrTarget(), " with attribute ",
				g.pick([]string{"n", "q"}), " { ", g.atom(), " }")
		default:
			return lit("insert attribute ", g.pick([]string{"q", "n"}), " { ", g.atom(), " } into ", g.updTarget())
		}
	default:
		// for-where iteration, possibly with a statement block.
		v := g.fresh()
		parts := []any{"for $", v, " in ", g.pick([]string{"//item", "/r/item", "/r/*", "//nope"})}
		g.vars = append(g.vars, v)
		if g.rng.Intn(2) == 0 {
			parts = append(parts, " where ", g.comparison(depth+1))
		}
		parts = append(parts, " return ")
		if depth < 2 && g.rng.Intn(3) == 0 {
			parts = append(parts, "(", g.updateVarStmt(v, depth+1), "; ", g.updateVarStmt(v, depth+1), ")")
		} else {
			parts = append(parts, g.updateVarStmt(v, depth+1))
		}
		g.vars = g.vars[:len(g.vars)-1]
		return &gnode{parts: parts}
	}
}

// updateVarStmt generates a statement whose target involves the loop
// variable, so the for-body exercises per-item targets.
func (g *gen) updateVarStmt(v string, depth int) *gnode {
	switch g.rng.Intn(5) {
	case 0:
		return lit("delete $", v, "/@k")
	case 1:
		return lit("insert ", g.updContent(depth), " into $", v)
	case 2:
		return lit("replace $", v, " with <nu>{string($", v, ")}</nu>")
	case 3:
		return lit("rename $", v, ` as "ren"`)
	default:
		return lit("insert attribute seen { 1 } into $", v)
	}
}

// updTarget picks an update target path: mostly singleton elements, but
// also missing targets (XUDY0027 parity), multi-item targets, text nodes,
// and the root.
func (g *gen) updTarget() *gnode {
	return lit(g.pick([]string{
		"(/r/item)[1]", "(/r/item)[2]", "(/r/item)[last()]", "/r/empty",
		"(//item)[1]", "(/)", "/r/nope", "(//item/text())[1]", "//item",
		"(/r/*)[1]",
	}))
}

// updAttrTarget picks attribute targets (present and missing).
func (g *gen) updAttrTarget() *gnode {
	return lit(g.pick([]string{
		"(/r/item)[1]/@n", "(/r/item)[1]/@k", "(/r/item)[2]/@nope", "(//item/@k)[1]",
	}))
}

// updContent generates insert/replace content: constructors, text, atomics,
// sequences — the same hazard mix the query generator feeds constructors.
func (g *gen) updContent(depth int) *gnode {
	switch g.rng.Intn(5) {
	case 0:
		return lit(`<nu a="1">x</nu>`)
	case 1:
		return lit("text { ", g.atom(), " }")
	case 2:
		return g.constructor(depth + 1)
	case 3:
		return lit("(", g.atom(), ", <mid/>, ", g.atom(), ")")
	default:
		return g.atom()
	}
}

// EvalUpdate runs one update case under one configuration. eager selects
// the deep-copy reference apply path instead of the COW path. A transform
// that mutates its input snapshot reports the synthetic code
// "SOURCE-MUTATED", which can never agree with a clean baseline.
func EvalUpdate(c UpdateCase, cfg Config, eager bool) Outcome {
	out := Outcome{Config: cfg}
	opts := []xq.Option{
		xq.WithOptLevel(cfg.OptLevel),
		xq.WithTraceEffectful(!cfg.GalaxTrace),
		xq.WithAccessPaths(!cfg.NoIndex),
		xq.WithShapes(!cfg.NoShapes),
		xq.WithDupAttrPolicy(c.Policy),
		xq.WithEagerCopyApply(eager),
	}
	var st xq.EvalStats
	if cfg.Traced {
		opts = append(opts, xq.WithTracer(xq.NopTracer), xq.WithStats(&st))
	}
	compile := xq.CompileUpdate
	if cfg.Cached {
		compile = xq.CompileUpdateCached
	}
	q, err := compile(c.Src, opts...)
	if err != nil {
		out.Code, out.Err = codeOf(err)
		return out
	}
	doc, err := xq.ParseXML(c.Doc)
	if err != nil {
		out.Code, out.Err = codeOf(err)
		return out
	}
	root := doc
	switch c.RootMode {
	case "frozen":
		root = xq.Freeze(doc)
	case "clone":
		root = xq.Freeze(doc).Clone()
	}
	before := root.String()
	res, terr := q.Transform(nil, root)
	if after := root.String(); after != before {
		out.Code = "SOURCE-MUTATED"
		out.Err = fmt.Sprintf("input snapshot changed across Transform:\nbefore: %s\nafter:  %s", before, after)
		return out
	}
	if terr != nil {
		out.Code, out.Err = codeOf(terr)
		out.LimitTripped = xq.IsLimitError(terr)
		return out
	}
	out.Out = res.String()
	return out
}

// CheckUpdate evaluates the update case under every configuration in
// configs, each on the COW apply path, against the baseline configuration
// on the eager deep-copy path, and returns the first divergence (or nil).
// With fewer than two configurations it uses the full Matrix.
func CheckUpdate(c UpdateCase, configs []Config) *Divergence {
	if len(configs) < 2 {
		configs = Matrix()
	}
	base := EvalUpdate(c, configs[0], true)
	base.Config.Name += "+eager"
	for _, cfg := range configs {
		got := EvalUpdate(c, cfg, false)
		if !base.equivalent(got) {
			return &Divergence{Case: c.asCase(), A: base, B: got}
		}
	}
	return nil
}
