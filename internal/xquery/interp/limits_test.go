package interp

import (
	"context"
	"strings"
	"testing"
	"time"

	"lopsided/internal/obs"
	"lopsided/internal/xdm"
)

// evalLimited compiles src and evaluates it under the given limits,
// returning the error (nil means the query completed).
func evalLimited(t *testing.T, src string, lim Limits, opts Options) error {
	t.Helper()
	opts.Limits = lim
	ip, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	_, err = ip.Eval(nil, nil)
	return err
}

func wantCode(t *testing.T, err error, code string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected %s error, got success", code)
	}
	var got string
	switch e := err.(type) {
	case *Error:
		got = e.Code
	case *xdm.Error:
		got = e.Code
	default:
		t.Fatalf("expected coded %s error, got %T: %v", code, err, err)
	}
	if got != code {
		t.Fatalf("expected %s, got %s (%v)", code, got, err)
	}
}

// The acceptance cases from the sandbox design: runaway queries terminate
// with the documented LOPS* code, within bounded wall-clock time.

func TestInfiniteForHitsStepBudget(t *testing.T) {
	err := evalLimited(t,
		`for $i in 1 to 40000000 return $i * 2`,
		Limits{MaxSteps: 50000}, Options{})
	wantCode(t, err, CodeSteps)
}

func TestInfiniteRecursionHitsStepBudget(t *testing.T) {
	// With the depth limit raised out of the way, unbounded recursion must
	// still terminate via the step budget.
	err := evalLimited(t,
		`declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)`,
		Limits{MaxSteps: 20000, MaxDepth: 1 << 20}, Options{})
	wantCode(t, err, CodeSteps)
}

func TestInfiniteRecursionHitsDepthLimit(t *testing.T) {
	err := evalLimited(t,
		`declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)`,
		Limits{MaxDepth: 100}, Options{})
	wantCode(t, err, CodeDepth)
}

func TestTimeoutTerminatesRunawayLoop(t *testing.T) {
	const timeout = 250 * time.Millisecond
	start := time.Now()
	err := evalLimited(t,
		`for $i in 1 to 40000000 return $i * 2`,
		Limits{Timeout: timeout}, Options{})
	elapsed := time.Since(start)
	wantCode(t, err, CodeTimeout)
	// The acceptance bound: termination within 2x the configured timeout.
	if elapsed > 2*timeout {
		t.Fatalf("took %v to honor a %v timeout", elapsed, timeout)
	}
}

func TestContextCancellationTerminatesEval(t *testing.T) {
	ip, err := Compile(`for $i in 1 to 40000000 return $i * 2`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, evalErr := ip.EvalContext(ctx, nil, nil)
	wantCode(t, evalErr, CodeTimeout)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

func TestNodeBudget(t *testing.T) {
	err := evalLimited(t,
		`<a>{for $i in 1 to 1000000 return <b/>}</a>`,
		Limits{MaxNodes: 1000}, Options{})
	wantCode(t, err, CodeNodes)
}

func TestOutputByteBudget(t *testing.T) {
	err := evalLimited(t,
		`<a>{for $i in 1 to 1000000 return "xxxxxxxxxxxxxxxx"}</a>`,
		Limits{MaxOutputBytes: 4096}, Options{})
	wantCode(t, err, CodeOutput)
}

func TestOutputByteBudgetViaConcat(t *testing.T) {
	// Doubling through fn:concat must charge the byte budget even though no
	// nodes are constructed.
	err := evalLimited(t,
		`declare function local:dbl($s, $n) {
		   if ($n = 0) then $s else local:dbl(concat($s, $s), $n - 1)
		 };
		 local:dbl("x", 40)`,
		Limits{MaxOutputBytes: 1 << 20}, Options{})
	wantCode(t, err, CodeOutput)
}

func TestLimitErrorsAreNotCatchable(t *testing.T) {
	// A limit error is sticky: try/catch must not let the query continue
	// past an exhausted budget, or the sandbox guarantees nothing.
	err := evalLimited(t,
		`try { for $i in 1 to 40000000 return $i } catch { "escaped" }`,
		Limits{MaxSteps: 10000}, Options{})
	wantCode(t, err, CodeSteps)
}

func TestDepthErrorRemainsCatchable(t *testing.T) {
	// Recursion depth is a per-call-chain condition, not an exhausted global
	// budget: catching it and continuing is sound (and the existing
	// try/catch tests depend on it).
	ip, err := Compile(
		`declare function local:loop($n) { local:loop($n + 1) };
		 try { local:loop(0) } catch ($c, $m) { $c }`,
		Options{Limits: Limits{MaxDepth: 50}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ip.EvalString(nil, nil)
	if err != nil {
		t.Fatalf("catch should have handled the depth error: %v", err)
	}
	if out != CodeDepth {
		t.Fatalf("caught code = %q, want %q", out, CodeDepth)
	}
}

func TestPanicContainment(t *testing.T) {
	// A host callback that panics must not crash the caller: the Eval
	// boundary converts it to a coded LOPS0009 error.
	ip, err := Compile(`trace("boom")`, Options{
		Tracer: obs.TraceFunc(func([]string) { panic("host tracer exploded") }),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, evalErr := ip.Eval(nil, nil)
	wantCode(t, evalErr, CodePanic)
	if !strings.Contains(evalErr.Error(), "host tracer exploded") {
		t.Fatalf("contained panic should carry the panic value: %v", evalErr)
	}
}

func TestUnlimitedEvalStillWorks(t *testing.T) {
	ip, err := Compile(`sum(for $i in 1 to 100 return $i)`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ip.EvalString(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != "5050" {
		t.Fatalf("got %q", out)
	}
}

func TestDeeplyNestedParensRejected(t *testing.T) {
	// The parser depth guard: pathological nesting must be a static error,
	// not a stack overflow.
	src := strings.Repeat("(", 100000) + "1" + strings.Repeat(")", 100000)
	if _, err := Compile(src, Options{}); err == nil {
		t.Fatal("deeply nested parens should fail to compile")
	}
}

func TestDeeplyNestedConstructorsRejected(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100000; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < 100000; i++ {
		b.WriteString("</a>")
	}
	if _, err := Compile(b.String(), Options{}); err == nil {
		t.Fatal("deeply nested constructors should fail to compile")
	}
}

func TestIsLimitCode(t *testing.T) {
	for _, code := range []string{CodeTimeout, CodeSteps, CodeDepth, CodeNodes, CodeOutput} {
		if !IsLimitCode(code) {
			t.Errorf("IsLimitCode(%s) = false", code)
		}
	}
	for _, code := range []string{CodePanic, "XPST0008", "FOAR0001", ""} {
		if IsLimitCode(code) {
			t.Errorf("IsLimitCode(%q) = true", code)
		}
	}
}

// ---- Threshold parity through the compiled path ----
//
// The exact budget consumption of representative programs, measured on the
// pre-refactor tree-walking evaluator. The closure-compiled engine charges
// at the same sites, so each program must succeed with exactly its
// threshold and trip one unit below it — byte-for-byte budget parity.

// thresholdCase is one program with its measured exact budget consumption.
type thresholdCase struct {
	name string
	src  string
	need int64
}

// checkThreshold asserts src completes with budget `need` and trips with
// code `code` at `need-1`.
func checkThreshold(t *testing.T, tc thresholdCase, mk func(n int64) Limits, code string) {
	t.Helper()
	t.Run(tc.name, func(t *testing.T) {
		if err := evalLimited(t, tc.src, mk(tc.need), Options{}); err != nil {
			t.Fatalf("budget %d should be exactly enough: %v", tc.need, err)
		}
		wantCode(t, evalLimited(t, tc.src, mk(tc.need-1), Options{}), code)
	})
}

func TestStepBudgetExactThresholds(t *testing.T) {
	cases := []thresholdCase{
		{"arith", `1 + 2`, 3},
		{"flwor", `for $i in 1 to 5 return $i * 2`, 24},
		{"let-count", `let $x := (1,2,3) return count($x)`, 7},
		{"construct", `<a id="1"><b/>{ "hi" }</a>`, 2},
		{"string-join", `string-join(("aa","bb","cc"), "-")`, 6},
	}
	for _, tc := range cases {
		checkThreshold(t, tc, func(n int64) Limits { return Limits{MaxSteps: n} }, CodeSteps)
	}
}

func TestNodeBudgetExactThresholds(t *testing.T) {
	cases := []thresholdCase{
		{"direct", `<a id="1"><b/>{ "hi" }</a>`, 5},
		{"computed", `element out { (attribute k {"v"}, <x/>, "text") }`, 6},
	}
	for _, tc := range cases {
		checkThreshold(t, tc, func(n int64) Limits { return Limits{MaxNodes: n} }, CodeNodes)
	}
}

func TestOutputByteBudgetExactThresholds(t *testing.T) {
	cases := []thresholdCase{
		{"direct", `<a id="1"><b/>{ "hi" }</a>`, 3},
		{"comp-text", `text { "hello world" }`, 11},
	}
	for _, tc := range cases {
		checkThreshold(t, tc, func(n int64) Limits { return Limits{MaxOutputBytes: n} }, CodeOutput)
	}
}

func TestDepthLimitExactThreshold(t *testing.T) {
	// Recursion to depth 10 needs MaxDepth 11 (the initial call plus ten
	// recursive frames).
	tc := thresholdCase{"recursion-10", `
		declare function local:down($n) {
		  if ($n = 0) then 0 else local:down($n - 1)
		};
		local:down(10)`, 11}
	checkThreshold(t, tc, func(n int64) Limits { return Limits{MaxDepth: int(n)} }, CodeDepth)
}

// ---- Uncatchability of exhausted budgets through the compiled path ----

func TestStepBudgetNotCatchable(t *testing.T) {
	err := evalLimited(t,
		`try { for $i in 1 to 5 return $i * 2 } catch { "escaped" }`,
		Limits{MaxSteps: 23}, Options{})
	wantCode(t, err, CodeSteps)
}

func TestNodeBudgetNotCatchable(t *testing.T) {
	err := evalLimited(t,
		`try { <a id="1"><b/>{ "hi" }</a> } catch { "escaped" }`,
		Limits{MaxNodes: 4}, Options{})
	wantCode(t, err, CodeNodes)
}

func TestOutputByteBudgetNotCatchable(t *testing.T) {
	err := evalLimited(t,
		`try { text { "hello world" } } catch { "escaped" }`,
		Limits{MaxOutputBytes: 10}, Options{})
	wantCode(t, err, CodeOutput)
}

func TestTimeoutNotCatchable(t *testing.T) {
	err := evalLimited(t,
		`try { for $i in 1 to 40000000 return $i * 2 } catch { "escaped" }`,
		Limits{Timeout: 100 * time.Millisecond}, Options{})
	wantCode(t, err, CodeTimeout)
}

// Depth (LOPS0003) stays deliberately catchable — a per-call-chain
// condition, not a global budget; TestDepthErrorRemainsCatchable covers it.
