package xdm

import (
	"math"
	"strconv"
	"strings"

	"lopsided/internal/xmltree"
)

// Occurrence is a sequence-type occurrence indicator.
type Occurrence int

// Occurrence indicators: exactly one, ? (zero or one), * (zero or more),
// + (one or more).
const (
	One Occurrence = iota
	Optional
	ZeroOrMore
	OneOrMore
)

// String returns the indicator's spelling ("" for exactly-one).
func (o Occurrence) String() string {
	switch o {
	case Optional:
		return "?"
	case ZeroOrMore:
		return "*"
	case OneOrMore:
		return "+"
	}
	return ""
}

// ItemTestKind classifies an item test.
type ItemTestKind int

// Item test kinds: item(), atomic type names, and the node kind tests.
const (
	TestAnyItem ItemTestKind = iota
	TestAtomic               // a named atomic type, e.g. xs:string
	TestAnyNode
	TestElement // element() or element(name)
	TestAttribute
	TestText
	TestComment
	TestPI
	TestDocument
	TestEmptySequence // empty-sequence()
)

// SequenceType is a parsed sequence type: an item test plus occurrence.
type SequenceType struct {
	Kind       ItemTestKind
	TypeName   string // for TestAtomic: "xs:string" etc.
	NodeName   string // for TestElement/TestAttribute: required name, "" = any
	Occurrence Occurrence
}

// AnySequence is the sequence type item()*.
var AnySequence = SequenceType{Kind: TestAnyItem, Occurrence: ZeroOrMore}

// String renders the sequence type in XQuery syntax.
func (t SequenceType) String() string {
	var core string
	switch t.Kind {
	case TestAnyItem:
		core = "item()"
	case TestAtomic:
		core = t.TypeName
	case TestAnyNode:
		core = "node()"
	case TestElement:
		core = "element(" + t.NodeName + ")"
	case TestAttribute:
		core = "attribute(" + t.NodeName + ")"
	case TestText:
		core = "text()"
	case TestComment:
		core = "comment()"
	case TestPI:
		core = "processing-instruction()"
	case TestDocument:
		core = "document-node()"
	case TestEmptySequence:
		return "empty-sequence()"
	}
	return core + t.Occurrence.String()
}

// MatchesItem reports whether a single item satisfies the item test.
func (t SequenceType) MatchesItem(it Item) bool {
	switch t.Kind {
	case TestAnyItem:
		return true
	case TestEmptySequence:
		return false
	case TestAtomic:
		return atomicMatches(it, t.TypeName)
	}
	n, ok := IsNode(it)
	if !ok {
		return false
	}
	switch t.Kind {
	case TestAnyNode:
		return true
	case TestElement:
		return n.Kind == xmltree.ElementNode && (t.NodeName == "" || t.NodeName == "*" || n.Name == t.NodeName)
	case TestAttribute:
		return n.Kind == xmltree.AttributeNode && (t.NodeName == "" || t.NodeName == "*" || n.Name == t.NodeName)
	case TestText:
		return n.Kind == xmltree.TextNode
	case TestComment:
		return n.Kind == xmltree.CommentNode
	case TestPI:
		return n.Kind == xmltree.PINode && (t.NodeName == "" || n.Name == t.NodeName)
	case TestDocument:
		return n.Kind == xmltree.DocumentNode
	}
	return false
}

func atomicMatches(it Item, typeName string) bool {
	switch typeName {
	case "xs:anyAtomicType", "xdt:anyAtomicType":
		_, isNode := IsNode(it)
		return !isNode
	case "xs:string":
		_, ok := it.(String)
		return ok
	case "xs:untypedAtomic", "xdt:untypedAtomic":
		_, ok := it.(Untyped)
		return ok
	case "xs:boolean":
		_, ok := it.(Boolean)
		return ok
	case "xs:integer", "xs:int", "xs:long", "xs:nonNegativeInteger", "xs:positiveInteger":
		i, ok := it.(Integer)
		if !ok {
			return false
		}
		switch typeName {
		case "xs:nonNegativeInteger":
			return i >= 0
		case "xs:positiveInteger":
			return i > 0
		}
		return true
	case "xs:decimal":
		switch it.(type) {
		case Integer, Decimal:
			return true
		}
		return false
	case "xs:double", "xs:float":
		_, ok := it.(Double)
		return ok
	case "xs:numeric":
		return IsNumeric(it)
	}
	return false
}

// Matches reports whether a sequence satisfies the sequence type.
func (t SequenceType) Matches(s Sequence) bool {
	if t.Kind == TestEmptySequence {
		return len(s) == 0
	}
	switch t.Occurrence {
	case One:
		if len(s) != 1 {
			return false
		}
	case Optional:
		if len(s) > 1 {
			return false
		}
	case OneOrMore:
		if len(s) == 0 {
			return false
		}
	}
	for _, it := range s {
		if !t.MatchesItem(it) {
			return false
		}
	}
	return true
}

// CastTo casts an atomic item to a named atomic type, per `cast as` and the
// xs: constructor functions. Unknown target types and failed conversions
// return errors (FORG0001/XPST0051).
func CastTo(it Item, typeName string) (Item, error) {
	s := strings.TrimSpace(it.StringValue())
	switch typeName {
	case "xs:string":
		return String(it.StringValue()), nil
	case "xs:untypedAtomic", "xdt:untypedAtomic":
		return Untyped(it.StringValue()), nil
	case "xs:boolean":
		switch v := it.(type) {
		case Boolean:
			return v, nil
		case Integer:
			return Boolean(v != 0), nil
		case Decimal:
			return Boolean(v != 0), nil
		case Double:
			return Boolean(float64(v) != 0 && !math.IsNaN(float64(v))), nil
		}
		switch s {
		case "true", "1":
			return Boolean(true), nil
		case "false", "0":
			return Boolean(false), nil
		}
		return nil, Errf("FORG0001", "cannot cast %q to xs:boolean", s)
	case "xs:integer", "xs:int", "xs:long":
		switch v := it.(type) {
		case Integer:
			return v, nil
		case Decimal:
			return Integer(int64(v)), nil
		case Double:
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, Errf("FOCA0002", "cannot cast %s to xs:integer", it.StringValue())
			}
			return Integer(int64(f)), nil
		case Boolean:
			if v {
				return Integer(1), nil
			}
			return Integer(0), nil
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, Errf("FORG0001", "cannot cast %q to xs:integer", s)
		}
		return Integer(i), nil
	case "xs:decimal":
		f, ok := castToFloat(it, s)
		if !ok || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, Errf("FORG0001", "cannot cast %q to xs:decimal", s)
		}
		return Decimal(f), nil
	case "xs:double", "xs:float":
		f, ok := castToFloat(it, s)
		if !ok {
			return nil, Errf("FORG0001", "cannot cast %q to xs:double", s)
		}
		return Double(f), nil
	}
	return nil, Errf("XPST0051", "unknown atomic type %s", typeName)
}

func castToFloat(it Item, s string) (float64, bool) {
	switch v := it.(type) {
	case Integer:
		return float64(v), true
	case Decimal:
		return float64(v), true
	case Double:
		return float64(v), true
	case Boolean:
		if v {
			return 1, true
		}
		return 0, true
	}
	f := parseDouble(s)
	if math.IsNaN(f) && s != "NaN" {
		return 0, false
	}
	return f, true
}
