// Package faultinject is a deterministic fault-injection harness for
// exercising the engine's degraded paths: seeded flaky wrappers for
// document resolution and model property access, plus retry-with-backoff
// for the transient class. The paper's C1 lesson is that a little language
// embedded in a real system spends much of its life on the failure path;
// this package makes that path testable on demand instead of waiting for
// production to supply the faults.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lopsided/internal/xmltree"
)

// FaultError is an injected failure. Transient faults model conditions a
// retry could clear (slow storage, a lock); permanent ones model missing or
// corrupt data.
type FaultError struct {
	Op        string // operation that failed, e.g. `doc("file.xml")`
	Transient bool
}

// Error implements the error interface.
func (e *FaultError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("injected %s fault: %s", kind, e.Op)
}

// IsTransient reports whether err is a retryable injected fault.
func IsTransient(err error) bool {
	fe, ok := err.(*FaultError)
	return ok && fe.Transient
}

// Fault records one injected event, in injection order.
type Fault struct {
	Op   string
	Kind string // "failure", "transient-failure" or "latency"
}

// Injector decides, deterministically from its seed, which operations fail.
// It is safe for concurrent use.
type Injector struct {
	mu            sync.Mutex
	rng           *rand.Rand
	failureRate   float64
	transientRate float64 // fraction of failures that are transient
	latencyRate   float64
	latency       time.Duration
	sleep         func(time.Duration)
	log           []Fault
}

// New builds an injector failing roughly failureRate of operations
// (0 ≤ rate ≤ 1), deterministically per seed. All failures are permanent
// until Transient or Latency configure otherwise.
func New(seed int64, failureRate float64) *Injector {
	return &Injector{
		rng:         rand.New(rand.NewSource(seed)),
		failureRate: failureRate,
		sleep:       time.Sleep,
	}
}

// Transient marks the given fraction of injected failures (0..1) as
// transient, i.e. clearable by retry. Returns the injector for chaining.
func (i *Injector) Transient(fraction float64) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.transientRate = fraction
	return i
}

// Latency makes the given fraction of operations stall for d before
// succeeding. Returns the injector for chaining.
func (i *Injector) Latency(fraction float64, d time.Duration) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.latencyRate = fraction
	i.latency = d
	return i
}

// SetSleep replaces the latency clock, letting tests observe stalls without
// real wall-time. Returns the injector for chaining.
func (i *Injector) SetSleep(f func(time.Duration)) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.sleep = f
	return i
}

// Hit gives the injector a chance to fault the named operation: it may
// stall, and it may return a *FaultError. A nil return means the operation
// should proceed normally.
func (i *Injector) Hit(op string) error {
	i.mu.Lock()
	stall := i.latencyRate > 0 && i.rng.Float64() < i.latencyRate
	fail := i.failureRate > 0 && i.rng.Float64() < i.failureRate
	transient := fail && i.transientRate > 0 && i.rng.Float64() < i.transientRate
	var d time.Duration
	var sleep func(time.Duration)
	if stall {
		d, sleep = i.latency, i.sleep
		i.log = append(i.log, Fault{Op: op, Kind: "latency"})
	}
	if fail {
		kind := "failure"
		if transient {
			kind = "transient-failure"
		}
		i.log = append(i.log, Fault{Op: op, Kind: kind})
	}
	i.mu.Unlock()
	if stall {
		sleep(d)
	}
	if fail {
		return &FaultError{Op: op, Transient: transient}
	}
	return nil
}

// Faults returns a copy of every fault injected so far, in order.
func (i *Injector) Faults() []Fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]Fault, len(i.log))
	copy(out, i.log)
	return out
}

// FailureCount reports how many injected faults were failures (either
// kind), excluding pure latency events.
func (i *Injector) FailureCount() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, f := range i.log {
		if f.Kind != "latency" {
			n++
		}
	}
	return n
}

// Resolver is the fn:doc resolution signature the xq API accepts.
type Resolver func(uri string) (*xmltree.Node, error)

// FlakyResolver wraps a document resolver with injected faults: per-URI
// failures and latency as configured on inj.
func FlakyResolver(inner Resolver, inj *Injector) Resolver {
	return func(uri string) (*xmltree.Node, error) {
		if err := inj.Hit(fmt.Sprintf("doc(%q)", uri)); err != nil {
			return nil, err
		}
		return inner(uri)
	}
}

// Backoff is a bounded exponential-backoff retry policy.
type Backoff struct {
	// Attempts is the maximum number of tries (≥1); 0 means 3.
	Attempts int
	// Base is the delay before the second try; it doubles per retry. 0
	// means 1ms.
	Base time.Duration
	// Sleep replaces time.Sleep in tests; nil uses the real clock.
	Sleep func(time.Duration)
}

// Retry runs op under the policy, retrying only transient faults: a
// permanent fault or success returns immediately. The last error is
// returned when attempts are exhausted.
func Retry(b Backoff, op func() error) error {
	attempts := b.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	delay := b.Base
	if delay <= 0 {
		delay = time.Millisecond
	}
	sleep := b.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			sleep(delay)
			delay *= 2
		}
		err = op()
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// RetryingResolver composes FlakyResolver's failure model with Retry:
// transient faults are retried under the policy, permanent faults surface
// at once. This is the wrapper a host would install as its fn:doc resolver.
func RetryingResolver(inner Resolver, b Backoff) Resolver {
	return func(uri string) (*xmltree.Node, error) {
		var doc *xmltree.Node
		err := Retry(b, func() error {
			var e error
			doc, e = inner(uri)
			return e
		})
		if err != nil {
			return nil, err
		}
		return doc, nil
	}
}
