package interp

// update.go is the compile + runtime layer for the FLUX-style update
// sublanguage. An update program compiles through the same two-stage engine
// as a query — the shared prolog machinery gives statements access to user
// functions and global variables, and every target/content expression is an
// ordinary closure-compiled expression — but instead of producing a value,
// each statement appends entries to a pending-update list (PUL).
//
// Execution is snapshot semantics: every statement evaluates against the
// UNCHANGED input tree (statements never see each other's effects), and the
// whole PUL is applied in one pass by xmltree.ApplyUpdates against a single
// lazy copy-on-write clone. Only the spine from the root to each touched
// node is materialized; the result comes back frozen, so indexes memoized
// on either snapshot stay valid by construction.
//
// Error codes follow the XQuery Update Facility families:
//
//	XUTY0004  attribute content in an illegal position
//	XUTY0005  insert-into target is not an element or document
//	XUTY0006  insert before/after target has no parent or is an attribute
//	XUTY0007  delete target sequence contains a non-node
//	XUTY0008  replace target is invalid (root, or content kind mismatch)
//	XUTY0012  rename target is not an element, attribute or PI
//	XUDY0015  two renames target the same node
//	XUDY0016  two replaces target the same node
//	XUDY0027  target is empty, more than one node, or not in the tree

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lopsided/internal/obs"
	"lopsided/internal/xdm"
	"lopsided/internal/xmltree"
	"lopsided/internal/xquery/ast"
	"lopsided/internal/xquery/shapes"
)

// compiledStmt is the runtime form of one update statement: evaluate its
// expressions against the snapshot and append pending updates.
type compiledStmt func(*evalCtx, *pulState) error

// pulState accumulates the pending-update list of one Transform call.
type pulState struct {
	// root is the source tree every target must belong to.
	root *xmltree.Node
	ups  []xmltree.Update
}

// NewUpdateProgram compiles a parsed (and typically optimizer-processed)
// update module. The result is a *Program like any other — it shares the
// plan cache, Explain and Interp plumbing — whose IsUpdate reports true and
// whose statements run via Interp.Transform.
func NewUpdateProgram(um *ast.UpdateModule) (*Program, error) {
	return NewUpdateProgramWithShapes(um, nil)
}

// NewUpdateProgramWithShapes compiles um with static shape facts attached,
// exactly as NewProgramWithShapes does for query modules. info must come
// from shapes.InferUpdateModule over the same post-optimization AST; nil is
// NewUpdateProgram.
func NewUpdateProgramWithShapes(um *ast.UpdateModule, info *shapes.Info) (*Program, error) {
	p, cp, err := newProgramShell(um.Prolog, info)
	if err != nil {
		return nil, err
	}
	p.updMod = um
	p.stmts = make([]compiledStmt, len(um.Stmts))
	for i, s := range um.Stmts {
		p.stmts[i] = cp.compileStmt(s)
	}
	// An update program has no body; Eval on it yields the empty sequence.
	p.body = constExpr(xdm.Empty)
	p.frameSize = cp.water
	return p, nil
}

// compileStmt lowers one update statement into its closure form.
func (cp *compiler) compileStmt(s ast.UpdateStmt) compiledStmt {
	switch n := s.(type) {
	case *ast.InsertStmt:
		return cp.compileInsert(n)
	case *ast.DeleteStmt:
		return cp.compileDelete(n)
	case *ast.ReplaceStmt:
		return cp.compileReplace(n)
	case *ast.RenameStmt:
		return cp.compileRename(n)
	case *ast.ForStmt:
		return cp.compileForStmt(n)
	case *ast.BlockStmt:
		body := make([]compiledStmt, len(n.Stmts))
		for i, st := range n.Stmts {
			body[i] = cp.compileStmt(st)
		}
		return func(c *evalCtx, pul *pulState) error {
			for _, st := range body {
				if err := st(c, pul); err != nil {
					return err
				}
			}
			return nil
		}
	}
	pos := s.Pos()
	return func(*evalCtx, *pulState) error {
		return &Error{Code: "XPST0003", Pos: pos, Msg: fmt.Sprintf("unsupported update statement %T", s)}
	}
}

func (cp *compiler) compileInsert(n *ast.InsertStmt) compiledStmt {
	src := cp.compile(n.Source)
	tgt := cp.compile(n.Target)
	placement, pos := n.Placement, n.P
	return func(c *evalCtx, pul *pulState) error {
		target, err := evalTarget(c, tgt, pul, pos, "insert "+placement.String())
		if err != nil {
			return err
		}
		sv, err := src(c)
		if err != nil {
			return err
		}
		intoElem := placement == ast.InsertInto && target.Kind == xmltree.ElementNode
		attrs, content, err := c.updateContent(sv, pos, intoElem)
		if err != nil {
			return err
		}
		switch placement {
		case ast.InsertInto:
			if target.Kind != xmltree.ElementNode && target.Kind != xmltree.DocumentNode {
				return &Error{Code: "XUTY0005", Pos: pos,
					Msg: fmt.Sprintf("insert into target is a %v, not an element or document", target.Kind)}
			}
			pul.ups = append(pul.ups, xmltree.Update{Op: xmltree.UpdInsertInto,
				Target: target, Content: content, Attrs: attrs})
		default:
			if target.Kind == xmltree.AttributeNode {
				return &Error{Code: "XUTY0006", Pos: pos,
					Msg: fmt.Sprintf("cannot insert %s an attribute node", placement)}
			}
			if target.Parent == nil {
				return &Error{Code: "XUTY0006", Pos: pos,
					Msg: fmt.Sprintf("insert %s target has no parent (it is the root)", placement)}
			}
			op := xmltree.UpdInsertBefore
			if placement == ast.InsertAfter {
				op = xmltree.UpdInsertAfter
			}
			pul.ups = append(pul.ups, xmltree.Update{Op: op, Target: target, Content: content})
		}
		return nil
	}
}

func (cp *compiler) compileDelete(n *ast.DeleteStmt) compiledStmt {
	tgt := cp.compile(n.Target)
	pos := n.P
	return func(c *evalCtx, pul *pulState) error {
		tv, err := tgt(c)
		if err != nil {
			return err
		}
		// Deleting the empty sequence is a no-op, not an error: `delete
		// //stale` on a clean document should succeed.
		for _, it := range tv {
			node, ok := xdm.IsNode(it)
			if !ok {
				return &Error{Code: "XUTY0007", Pos: pos,
					Msg: fmt.Sprintf("delete target contains a non-node item %q", it.StringValue())}
			}
			if node.Root() != pul.root {
				return &Error{Code: "XUDY0027", Pos: pos,
					Msg: "delete target is not in the tree being transformed"}
			}
			if node.Parent == nil {
				// Parentless (root) targets are ignored, XQUF-style.
				continue
			}
			pul.ups = append(pul.ups, xmltree.Update{Op: xmltree.UpdDelete, Target: node})
		}
		return nil
	}
}

func (cp *compiler) compileReplace(n *ast.ReplaceStmt) compiledStmt {
	tgt := cp.compile(n.Target)
	src := cp.compile(n.Source)
	pos := n.P
	return func(c *evalCtx, pul *pulState) error {
		target, err := evalTarget(c, tgt, pul, pos, "replace")
		if err != nil {
			return err
		}
		if target.Parent == nil {
			return &Error{Code: "XUTY0008", Pos: pos, Msg: "cannot replace the root of the tree"}
		}
		sv, err := src(c)
		if err != nil {
			return err
		}
		if target.Kind == xmltree.AttributeNode {
			attrs, content, err := c.updateContent(sv, pos, true)
			if err != nil {
				return err
			}
			if len(content) > 0 {
				return &Error{Code: "XUTY0008", Pos: pos,
					Msg: "replacing an attribute requires attribute content"}
			}
			pul.ups = append(pul.ups, xmltree.Update{Op: xmltree.UpdReplace, Target: target, Attrs: attrs})
			return nil
		}
		_, content, err := c.updateContent(sv, pos, false)
		if err != nil {
			return err
		}
		pul.ups = append(pul.ups, xmltree.Update{Op: xmltree.UpdReplace, Target: target, Content: content})
		return nil
	}
}

func (cp *compiler) compileRename(n *ast.RenameStmt) compiledStmt {
	tgt := cp.compile(n.Target)
	nameExpr := cp.compile(n.Name)
	pos := n.P
	return func(c *evalCtx, pul *pulState) error {
		target, err := evalTarget(c, tgt, pul, pos, "rename")
		if err != nil {
			return err
		}
		switch target.Kind {
		case xmltree.ElementNode, xmltree.AttributeNode, xmltree.PINode:
		default:
			return &Error{Code: "XUTY0012", Pos: pos,
				Msg: fmt.Sprintf("rename target is a %v, not an element, attribute or processing instruction", target.Kind)}
		}
		name, err := constructorName(c, "", nameExpr, pos)
		if err != nil {
			return err
		}
		pul.ups = append(pul.ups, xmltree.Update{Op: xmltree.UpdRename, Target: target, Name: name})
		return nil
	}
}

func (cp *compiler) compileForStmt(n *ast.ForStmt) compiledStmt {
	in := cp.compile(n.In)
	slot := cp.bindLocal(n.Var)
	var where compiledExpr
	if n.Where != nil {
		where = cp.compile(n.Where)
	}
	body := make([]compiledStmt, len(n.Body))
	for i, st := range n.Body {
		body[i] = cp.compileStmt(st)
	}
	cp.popLocals(1)
	pos := n.P
	return func(c *evalCtx, pul *pulState) error {
		seq, err := in(c)
		if err != nil {
			return err
		}
		for _, it := range seq {
			c.frame[slot] = xdm.Singleton(it)
			if where != nil {
				wv, err := where(c)
				if err != nil {
					return err
				}
				ok, err := xdm.EffectiveBool(wv)
				if err != nil {
					return errAt(err, pos)
				}
				if !ok {
					continue
				}
			}
			for _, st := range body {
				if err := st(c, pul); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// evalTarget evaluates a single-node target expression: an empty sequence,
// more than one item, a non-node item, or a node outside the context tree
// all raise XUDY0027. Kind checks are the caller's.
func evalTarget(c *evalCtx, tgt compiledExpr, pul *pulState, pos ast.Pos, what string) (*xmltree.Node, error) {
	tv, err := tgt(c)
	if err != nil {
		return nil, err
	}
	if tv.IsEmpty() {
		return nil, &Error{Code: "XUDY0027", Pos: pos, Msg: what + " target is an empty sequence"}
	}
	if len(tv) > 1 {
		return nil, &Error{Code: "XUDY0027", Pos: pos,
			Msg: fmt.Sprintf("%s target is a sequence of %d items, not a single node", what, len(tv))}
	}
	node, ok := xdm.IsNode(tv[0])
	if !ok {
		return nil, &Error{Code: "XUDY0027", Pos: pos,
			Msg: fmt.Sprintf("%s target is an atomic value, not a node", what)}
	}
	if node.Root() != pul.root {
		return nil, &Error{Code: "XUDY0027", Pos: pos,
			Msg: what + " target is not in the tree being transformed"}
	}
	return node, nil
}

// updateContent converts a content sequence into parentless attribute and
// content nodes for the PUL, with the draft element-constructor semantics
// (construct.go's fillElement): runs of adjacent atomics space-join into one
// text node, adjacent text merges, nodes are copied (lazily — Clone shares
// subtrees), document nodes splice their children. Attribute nodes are legal
// only in leading positions and only when allowAttrs is true (insert-into an
// element, replace of an attribute); anywhere else they raise XUTY0004.
func (c *evalCtx) updateContent(v xdm.Sequence, pos ast.Pos, allowAttrs bool) (attrs, content []*xmltree.Node, err error) {
	sawContent := false
	appendText := func(s string) error {
		if s == "" {
			return nil
		}
		if err := c.chargeBytes(len(s)); err != nil {
			return errAt(err, pos)
		}
		if len(content) > 0 && content[len(content)-1].Kind == xmltree.TextNode {
			content[len(content)-1].Data += s
			return nil
		}
		if err := c.chargeNodes(1); err != nil {
			return errAt(err, pos)
		}
		content = append(content, xmltree.NewText(s))
		return nil
	}
	appendCopy := func(node *xmltree.Node) error {
		if err := c.chargeNodes(xmltree.CountNodes(node)); err != nil {
			return errAt(err, pos)
		}
		content = append(content, node.Clone())
		return nil
	}
	var pending []string
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		joined := ""
		for i, s := range pending {
			if i > 0 {
				joined += " "
			}
			joined += s
		}
		pending = pending[:0]
		sawContent = true
		return appendText(joined)
	}
	for _, it := range v {
		node, isNode := xdm.IsNode(it)
		if !isNode {
			pending = append(pending, it.StringValue())
			continue
		}
		if err := flush(); err != nil {
			return nil, nil, err
		}
		switch node.Kind {
		case xmltree.AttributeNode:
			if !allowAttrs || sawContent {
				return nil, nil, &Error{Code: "XUTY0004", Pos: pos,
					Msg: fmt.Sprintf("attribute %q in illegal update content position", node.Name)}
			}
			if err := c.chargeNodes(1); err != nil {
				return nil, nil, errAt(err, pos)
			}
			attrs = append(attrs, node.Clone())
		case xmltree.DocumentNode:
			for _, kid := range node.Children() {
				if err := appendCopy(kid); err != nil {
					return nil, nil, err
				}
			}
			sawContent = true
		case xmltree.TextNode:
			if err := appendText(node.Data); err != nil {
				return nil, nil, err
			}
			sawContent = true
		default:
			if err := appendCopy(node); err != nil {
				return nil, nil, err
			}
			sawContent = true
		}
	}
	if err := flush(); err != nil {
		return nil, nil, err
	}
	return attrs, content, nil
}

// Transform executes an update program against root: evaluates every
// statement against the unchanged snapshot, then applies the collected
// pending-update list in one pass. It returns the transformed tree as a new
// frozen root — root itself is frozen, never mutated, and stays valid.
//
// When eager is true the logical copy is a full deep copy (the reference
// implementation the differential harness compares the COW path against).
//
// Transform mirrors EvalWithOpts: same panic containment, budget, tracing
// and stats plumbing; st reports what ApplyUpdates did.
func (ip *Interp) Transform(ctx context.Context, root *xmltree.Node, vars map[string]xdm.Sequence, eo EvalOpts, eager bool) (out *xmltree.Node, st xmltree.ApplyStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, st = nil, xmltree.ApplyStats{}
			err = &Error{Code: CodePanic, Msg: fmt.Sprintf("internal panic contained at Transform boundary: %v", r)}
		}
	}()
	p := ip.prog
	if p.updMod == nil {
		return nil, xmltree.ApplyStats{}, &Error{Code: "XPST0003",
			Msg: "Transform called on a query program (compile with NewUpdateProgram)"}
	}
	if root == nil {
		return nil, xmltree.ApplyStats{}, &Error{Code: "XPDY0002",
			Msg: "Transform needs a context tree to update"}
	}
	c := &evalCtx{
		ip:      ip,
		bud:     newBudget(ctx, ip.opts.Limits, eo.Stats != nil),
		tr:      ip.opts.Tracer,
		frame:   make([]xdm.Sequence, p.frameSize),
		globals: make([]xdm.Sequence, len(p.globalNames)),
		gset:    make([]bool, len(p.globalNames)),
	}
	if eo.Stats != nil {
		start := time.Now()
		defer func() {
			ip.fillStats(eo.Stats, c.bud, time.Since(start))
			eo.Stats.UpdatesApplied = st.Applied
			eo.Stats.SpineNodes = st.SpineNodes
		}()
	}
	defer func() {
		if c.bud != nil && c.bud.shapeElided > 0 {
			obs.Default().ShapeChecksElided.Add(c.bud.shapeElided)
		}
	}()
	if c.tr != nil {
		for _, et := range p.elided {
			c.tr.Emit(obs.Event{Kind: obs.TraceHit, Line: et.P.Line, Col: et.P.Col,
				Values: et.Values, Elided: true})
		}
	}
	for name, val := range vars {
		if slot, ok := p.globalIdx[name]; ok {
			c.globals[slot] = val
			c.gset[slot] = true
		}
	}
	c.focus = focus{item: xdm.NewNode(root), pos: 1, size: 1, set: true}
	for _, pst := range p.prolog {
		if pst.init == nil {
			if !c.gset[pst.slot] {
				return nil, xmltree.ApplyStats{}, &Error{Code: "XPDY0002", Pos: pst.pos,
					Msg: fmt.Sprintf("external variable $%s not supplied", pst.name)}
			}
			continue
		}
		val, err := pst.init(c)
		if err != nil {
			return nil, xmltree.ApplyStats{}, err
		}
		c.globals[pst.slot] = val
		c.gset[pst.slot] = true
	}
	pul := &pulState{root: root}
	for _, stmt := range p.stmts {
		if err := stmt(c, pul); err != nil {
			return nil, xmltree.ApplyStats{}, err
		}
	}
	newRoot, applied, err := xmltree.ApplyUpdates(root, pul.ups, eager)
	if err != nil {
		return nil, xmltree.ApplyStats{}, mapApplyErr(err)
	}
	return newRoot, applied, nil
}

// mapApplyErr converts xmltree's structural sentinels into coded errors.
// Most structural problems are caught with positions at collection time;
// only whole-PUL conflicts genuinely originate here.
func mapApplyErr(err error) error {
	switch {
	case errors.Is(err, xmltree.ErrReplaceConflict):
		return &Error{Code: "XUDY0016", Msg: err.Error()}
	case errors.Is(err, xmltree.ErrRenameConflict):
		return &Error{Code: "XUDY0015", Msg: err.Error()}
	case errors.Is(err, xmltree.ErrTargetNotInTree):
		return &Error{Code: "XUDY0027", Msg: err.Error()}
	case errors.Is(err, xmltree.ErrTargetIsRoot):
		return &Error{Code: "XUTY0008", Msg: err.Error()}
	}
	return err
}
