// Package experiments regenerates every empirical artifact of the paper:
// its illustrative tables (sequence indexing, attribute folding, the
// row/col table) and its quantified or quantifiable claims (error-handling
// blowup, multi-phase overhead, XQuery-vs-native runtime, the trace
// dead-code anecdote, set-encoding costs, engine parity). The lopsided-bench
// command prints these reports; EXPERIMENTS.md records them against the
// paper's statements.
package experiments

import (
	"fmt"
	"sort"
	"time"
)

// Report is one experiment's output.
type Report struct {
	ID      string // e.g. "E1"
	Title   string
	Paper   string // what the paper says
	Text    string // the regenerated table/series
	Verdict string // one-line comparison against the paper's claim
}

// runner produces a report. A runner that cannot complete returns an
// error instead of a report; it must not panic — residual panics are
// contained by Run so one broken experiment cannot take down the whole
// lopsided-bench sweep.
type runner struct {
	id    string
	title string
	run   func() (Report, error)
}

var registry []runner

func register(id, title string, run func() (Report, error)) {
	registry = append(registry, runner{id: id, title: title, run: run})
	// Keep a stable, human order (E1..E10, then F1) regardless of the
	// per-file init order.
	sort.Slice(registry, func(i, j int) bool {
		ki, kj := idKey(registry[i].id), idKey(registry[j].id)
		if ki != kj {
			return ki < kj
		}
		return registry[i].id < registry[j].id
	})
}

// idKey orders experiment IDs: E-series first by number, then F-series.
func idKey(id string) int {
	if len(id) < 2 {
		return 1 << 20
	}
	n := 0
	fmt.Sscanf(id[1:], "%d", &n)
	if id[0] == 'F' {
		n += 1000
	}
	return n
}

// IDs lists registered experiment IDs in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	return out
}

// Run executes one experiment by ID. A failing experiment returns an
// error; a panicking one is contained and reported as an error too, so
// callers iterating over IDs can always continue to the next experiment.
func Run(id string) (Report, error) {
	for _, r := range registry {
		if r.id == id {
			return safeRun(r)
		}
	}
	return Report{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}

// safeRun executes one runner with the panic net in place.
func safeRun(r runner) (rep Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiments: %s (%s) panicked: %v", r.id, r.title, p)
		}
	}()
	rep, err = r.run()
	if err != nil {
		err = fmt.Errorf("experiments: %s (%s): %w", r.id, r.title, err)
	}
	return rep, err
}

// Outcome is one experiment's result in a RunAll sweep: either a report
// or the error that stopped it.
type Outcome struct {
	ID     string
	Report Report
	Err    error
}

// RunAll executes every experiment in registration order, continuing
// past failures and recording each result.
func RunAll() []Outcome {
	out := make([]Outcome, 0, len(registry))
	for _, r := range registry {
		rep, err := safeRun(r)
		out = append(out, Outcome{ID: r.id, Report: rep, Err: err})
	}
	return out
}

// String renders a report for the terminal.
func (r Report) String() string {
	return fmt.Sprintf("== %s: %s ==\npaper: %s\n\n%s\nverdict: %s\n",
		r.ID, r.Title, r.Paper, r.Text, r.Verdict)
}

// medianTime runs f `runs` times and returns the median duration — stable
// enough for the shape comparisons the reproduction needs.
func medianTime(runs int, f func()) time.Duration {
	if runs < 1 {
		runs = 1
	}
	ds := make([]time.Duration, runs)
	for i := range ds {
		start := time.Now()
		f()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%dµs", d.Microseconds())
}
