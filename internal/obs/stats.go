package obs

import (
	"fmt"
	"strings"
	"time"
)

// EvalStats reports what one evaluation consumed, next to the budgets it
// ran under (zero budget = unlimited). The engine fills the struct passed
// via the public WithStats option after every evaluation, successful or
// not, overwriting the previous contents.
type EvalStats struct {
	// Steps is the number of evaluation steps charged (expression
	// evaluations, loop iterations, bulk charges from built-ins);
	// MaxSteps is the budget it ran under.
	Steps, MaxSteps int64
	// Nodes counts XML nodes constructed; MaxNodes is the budget.
	Nodes, MaxNodes int64
	// OutputBytes counts bytes of constructed text/atomized output;
	// MaxOutputBytes is the budget.
	OutputBytes, MaxOutputBytes int64
	// Timeout is the wall-clock budget the evaluation ran under.
	Timeout time.Duration
	// Wall is the measured wall-clock time of the evaluation.
	Wall time.Duration
	// TraceEvents counts fn:trace hits during the evaluation (live hits
	// only, not elided-site reports).
	TraceEvents int64
	// PlanCacheHit reports whether the query's compiled plan came out of
	// the process-wide plan cache (false for plain Compile).
	PlanCacheHit bool
	// CowClones and CowBreaks report the copy-on-write tree traffic during
	// the evaluation: lazy clones handed out, and one-level materializations
	// that broke sharing. Breaks well below Clones means the sharing held.
	// Measured as deltas of process-wide counters, so concurrent
	// evaluations bleed into each other's numbers; treat as indicative
	// under parallel load.
	CowClones, CowBreaks int64
	// PoolHits and PoolMisses report scratch-buffer pool traffic (document
	// order sort keys, node buffers) during the evaluation, with the same
	// process-wide-delta caveat.
	PoolHits, PoolMisses int64
	// IndexHits, IndexPrunes, and IndexFallbacks report access-path traffic
	// during the evaluation: step probes served from a structural/value
	// index, child steps proven empty by the path synopsis, and probes that
	// fell back to a tree walk. IndexBuilds counts index sections
	// constructed (first probe of a freshly frozen tree pays the build).
	// Same process-wide-delta caveat as the COW counters.
	IndexHits, IndexPrunes, IndexFallbacks, IndexBuilds int64
	// UpdatesApplied and SpineNodes report what a Transform call did: the
	// length of the pending-update list applied, and the number of lazy
	// clone nodes materialized navigating to the targets (the copied spine).
	// Exact per-call values, not process-wide deltas. Zero for queries.
	UpdatesApplied, SpineNodes int64
	// ShapeChecksElided counts runtime checks (operand atomization and
	// cardinality dispatch, effective-boolean reads, argument type checks)
	// skipped because the static shape analysis proved them redundant.
	// Exact per-call value; zero when the plan was compiled without shapes.
	ShapeChecksElided int64
	// StreamMode records which streaming tier served the evaluation:
	// "full-stream" (SAX evaluator, no tree), "projected"
	// (projection-pruned parse), or "materialize". Empty for evaluations
	// that did not go through a streaming entry point.
	StreamMode string
	// BytesScanned counts input bytes consumed by the streaming parse or
	// SAX evaluation; NodesPruned counts elements the projection dropped.
	// Exact per-call values; zero outside streaming entry points.
	BytesScanned, NodesPruned int64
}

// String renders the stats as the one-line form the CLIs print:
// "steps=412/1000000 nodes=7 output-bytes=123 wall=1.2ms plan-cache=hit".
// A consumed counter with a nonzero budget prints as used/budget.
func (s EvalStats) String() string {
	var b strings.Builder
	quota := func(name string, used, max int64) {
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		if max > 0 {
			fmt.Fprintf(&b, "%s=%d/%d", name, used, max)
		} else {
			fmt.Fprintf(&b, "%s=%d", name, used)
		}
	}
	quota("steps", s.Steps, s.MaxSteps)
	quota("nodes", s.Nodes, s.MaxNodes)
	quota("output-bytes", s.OutputBytes, s.MaxOutputBytes)
	fmt.Fprintf(&b, " wall=%v", s.Wall.Round(time.Microsecond))
	if s.Timeout > 0 {
		fmt.Fprintf(&b, " timeout=%v", s.Timeout)
	}
	if s.TraceEvents > 0 {
		fmt.Fprintf(&b, " trace-events=%d", s.TraceEvents)
	}
	cache := "miss"
	if s.PlanCacheHit {
		cache = "hit"
	}
	fmt.Fprintf(&b, " plan-cache=%s", cache)
	if s.CowClones > 0 || s.CowBreaks > 0 {
		fmt.Fprintf(&b, " cow=%d/%d(clones/breaks)", s.CowClones, s.CowBreaks)
	}
	if s.PoolHits > 0 || s.PoolMisses > 0 {
		fmt.Fprintf(&b, " pool=%d/%d(hits/misses)", s.PoolHits, s.PoolMisses)
	}
	if s.IndexHits > 0 || s.IndexPrunes > 0 || s.IndexFallbacks > 0 {
		fmt.Fprintf(&b, " index=%d/%d/%d(hits/prunes/fallbacks)",
			s.IndexHits, s.IndexPrunes, s.IndexFallbacks)
	}
	if s.UpdatesApplied > 0 || s.SpineNodes > 0 {
		fmt.Fprintf(&b, " upd=%d/%d(applied/spine-nodes)", s.UpdatesApplied, s.SpineNodes)
	}
	if s.ShapeChecksElided > 0 {
		fmt.Fprintf(&b, " shape-elided=%d", s.ShapeChecksElided)
	}
	if s.StreamMode != "" {
		fmt.Fprintf(&b, " stream=%s scanned-bytes=%d", s.StreamMode, s.BytesScanned)
		if s.NodesPruned > 0 {
			fmt.Fprintf(&b, " pruned-nodes=%d", s.NodesPruned)
		}
	}
	return b.String()
}
