package xq_test

import (
	"fmt"
	"sync"
	"testing"

	"lopsided/xq"
)

// TestPlanCacheEviction overflows the bounded plan cache with unique
// programs and checks that eviction kicks in: occupancy stays at or under
// the cap, evictions are counted, and evicted programs recompile fine.
func TestPlanCacheEviction(t *testing.T) {
	before := xq.PlanCache()
	const programs = 1300 // comfortably past the 1024-entry cap
	for i := 0; i < programs; i++ {
		src := fmt.Sprintf(`(: evict-seq %d :) %d + 1`, i, i)
		q, err := xq.CompileCached(src)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if i == 0 || i == programs-1 {
			out, err := q.EvalString(nil, nil)
			if err != nil || out != fmt.Sprintf("%d", i+1) {
				t.Fatalf("program %d evaluated to %q (%v)", i, out, err)
			}
		}
	}
	after := xq.PlanCache()
	if after.Entries > 1024 {
		t.Fatalf("cache holds %d entries, cap is 1024", after.Entries)
	}
	if after.Evictions <= before.Evictions {
		t.Fatalf("expected evictions to rise past %d, got %d", before.Evictions, after.Evictions)
	}
	if after.SourceBytes <= 0 {
		t.Fatalf("SourceBytes = %d, want > 0", after.SourceBytes)
	}
	// A swept program is still compilable — eviction only costs a recompile.
	q, err := xq.CompileCached(`(: evict-seq 0 :) 0 + 1`)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := q.EvalString(nil, nil); err != nil || out != "1" {
		t.Fatalf("recompiled evictee evaluated to %q (%v)", out, err)
	}
}

// TestPlanCacheConcurrentChurn runs 16 goroutines that together push the
// cache through several eviction sweeps while a shared hot program is
// compiled and evaluated throughout. Run under -race in CI; it pins that
// insertion, eviction, and the stats snapshot are safe to interleave.
func TestPlanCacheConcurrentChurn(t *testing.T) {
	const goroutines = 16
	const perG = 120 // 16*120 = 1920 unique programs, > one full cap
	hot := `(: churn-hot :) string-join(for $i in 1 to 3 return string($i), "-")`
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				src := fmt.Sprintf(`(: churn %d-%d :) %d * 2`, g, i, i)
				if _, err := xq.CompileCached(src); err != nil {
					errs <- fmt.Errorf("goroutine %d program %d: %w", g, i, err)
					return
				}
				if i%16 == 0 {
					// Interleave stats snapshots with eviction sweeps.
					if st := xq.PlanCache(); st.Entries < 0 {
						errs <- fmt.Errorf("negative occupancy: %+v", st)
						return
					}
					q, err := xq.CompileCached(hot)
					if err != nil {
						errs <- fmt.Errorf("hot program: %w", err)
						return
					}
					out, err := q.EvalString(nil, nil)
					if err != nil || out != "1-2-3" {
						errs <- fmt.Errorf("hot program evaluated to %q (%v)", out, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := xq.PlanCache(); st.Entries > 1024 {
		t.Fatalf("cache holds %d entries after churn, cap is 1024", st.Entries)
	}
}
