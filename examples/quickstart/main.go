// Quickstart: compile and run XQuery against an XML document with the
// public xq API, and meet the quirks the paper documents.
package main

import (
	"fmt"
	"strings"

	"lopsided/xq"
)

const library = `
<lib>
  <book year="1983"><title>Little Languages</title></book>
  <book year="2004"><title>XQuery from the Experts</title></book>
  <book year="1999"><title>Programming Pearls</title></book>
</lib>`

func main() {
	doc, err := xq.ParseXML(library)
	if err != nil {
		panic(err)
	}

	show := func(label, src string) {
		q, err := xq.Compile(src)
		if err != nil {
			fmt.Printf("%-34s compile error: %v\n", label, err)
			return
		}
		out, err := q.EvalString(nil, doc)
		if err != nil {
			fmt.Printf("%-34s error: %v\n", label, err)
			return
		}
		fmt.Printf("%-34s %s\n", label, out)
	}

	// The basics: paths, predicates, FLWOR.
	show("titles:", `for $b in /lib/book order by $b/title return string($b/title)`)
	show("books after 1990:", `count(/lib/book[@year > 1990])`)
	show("first title:", `string((/lib/book/title)[1])`)

	// Constructing new XML out of the pieces.
	show("reshape:", `<catalog n="{count(/lib/book)}">{
	    for $b in /lib/book return <entry y="{string($b/@year)}">{string($b/title)}</entry>
	}</catalog>`)

	// Quirk #4: = is existential. 1983 = (1983, 2004, 1999) is true.
	show("any book from 1983:", `/lib/book/@year = "1983"`)

	// Quirk #3: $n-1 is a variable named "n-1", not subtraction.
	show("$n-1 is one variable:", `let $n-1 := "gotcha" return $n-1`)
	show("subtraction needs space:", `let $n := 10 return $n - 1`)

	// Flattening: there is no sequence of sequences.
	show("flattening:", `(1,(2,3,4),(),(5,((6,7))))`)

	// The trace that Galax's dead-code pass used to eat (see xqrun
	// -galax-trace for the buggy behavior).
	q := xq.MustCompile(`let $x := trace("x is", 21) return 2 * $x`,
		xq.WithTracer(xq.TraceFunc(func(values []string) { fmt.Println("  trace said:", values) })))
	out, _ := q.EvalString(nil, nil)
	fmt.Printf("%-34s %s\n", "traced computation:", out)

	// Observability: per-evaluation stats and the compiled-plan dump.
	var st xq.EvalStats
	q = xq.MustCompile(`count(for $b in /lib/book where $b/@year > 1990 return $b)`)
	out, _ = q.EvalString(nil, doc, xq.WithStats(&st))
	fmt.Printf("%-34s %s (%s)\n", "recent books, with stats:", out, st.String())
	fmt.Println("plan dump (first line):", firstLine(q.Explain()))
}

// firstLine trims a multi-line dump to its headline.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
