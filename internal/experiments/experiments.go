// Package experiments regenerates every empirical artifact of the paper:
// its illustrative tables (sequence indexing, attribute folding, the
// row/col table) and its quantified or quantifiable claims (error-handling
// blowup, multi-phase overhead, XQuery-vs-native runtime, the trace
// dead-code anecdote, set-encoding costs, engine parity). The lopsided-bench
// command prints these reports; EXPERIMENTS.md records them against the
// paper's statements.
package experiments

import (
	"fmt"
	"sort"
	"time"
)

// Report is one experiment's output.
type Report struct {
	ID      string // e.g. "E1"
	Title   string
	Paper   string // what the paper says
	Text    string // the regenerated table/series
	Verdict string // one-line comparison against the paper's claim
}

// runner produces a report.
type runner struct {
	id    string
	title string
	run   func() Report
}

var registry []runner

func register(id, title string, run func() Report) {
	registry = append(registry, runner{id: id, title: title, run: run})
	// Keep a stable, human order (E1..E10, then F1) regardless of the
	// per-file init order.
	sort.Slice(registry, func(i, j int) bool {
		ki, kj := idKey(registry[i].id), idKey(registry[j].id)
		if ki != kj {
			return ki < kj
		}
		return registry[i].id < registry[j].id
	})
}

// idKey orders experiment IDs: E-series first by number, then F-series.
func idKey(id string) int {
	if len(id) < 2 {
		return 1 << 20
	}
	n := 0
	fmt.Sscanf(id[1:], "%d", &n)
	if id[0] == 'F' {
		n += 1000
	}
	return n
}

// IDs lists registered experiment IDs in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	return out
}

// Run executes one experiment by ID.
func Run(id string) (Report, error) {
	for _, r := range registry {
		if r.id == id {
			return r.run(), nil
		}
	}
	return Report{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}

// RunAll executes every experiment in registration order.
func RunAll() []Report {
	out := make([]Report, 0, len(registry))
	for _, r := range registry {
		out = append(out, r.run())
	}
	return out
}

// String renders a report for the terminal.
func (r Report) String() string {
	return fmt.Sprintf("== %s: %s ==\npaper: %s\n\n%s\nverdict: %s\n",
		r.ID, r.Title, r.Paper, r.Text, r.Verdict)
}

// medianTime runs f `runs` times and returns the median duration — stable
// enough for the shape comparisons the reproduction needs.
func medianTime(runs int, f func()) time.Duration {
	if runs < 1 {
		runs = 1
	}
	ds := make([]time.Duration, runs)
	for i := range ds {
		start := time.Now()
		f()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%dµs", d.Microseconds())
}
