package xslt

import (
	"fmt"
	"strings"

	"lopsided/internal/xmltree"
)

// pattern is a compiled match pattern: an alternation of path patterns.
type pattern struct {
	source string
	alts   []pathPattern
}

// pathPattern is steps read right-to-left: the last step must match the
// node, each preceding step must match an ancestor (parent for '/', any
// ancestor for '//'). rooted means the leftmost step must sit at the root.
type pathPattern struct {
	steps  []patternStep
	rooted bool
}

type patternStep struct {
	// test: "name", "*", "text()", "node()", "comment()",
	// "processing-instruction()", "@name", "@*", or "/" for the document.
	test string
	// anyDepth: this step is joined to the one on its right with '//'.
	anyDepth bool
}

// parsePattern compiles the subset of XSLT patterns the splitters use:
// alternation with '|', steps with '/' and '//', name tests, kind tests,
// attribute tests, and a leading '/'.
func parsePattern(src string) (*pattern, error) {
	p := &pattern{source: src}
	for _, alt := range strings.Split(src, "|") {
		alt = strings.TrimSpace(alt)
		if alt == "" {
			return nil, fmt.Errorf("xslt: empty alternative in pattern %q", src)
		}
		pp, err := parsePathPattern(alt)
		if err != nil {
			return nil, err
		}
		p.alts = append(p.alts, pp)
	}
	return p, nil
}

func parsePathPattern(src string) (pathPattern, error) {
	pp := pathPattern{}
	if src == "/" {
		pp.rooted = true
		pp.steps = []patternStep{{test: "/"}}
		return pp, nil
	}
	rest := src
	if strings.HasPrefix(rest, "//") {
		rest = rest[2:]
	} else if strings.HasPrefix(rest, "/") {
		pp.rooted = true
		rest = rest[1:]
	}
	// pendingAnyDepth records that the join to the LEFT of the step about
	// to be parsed was '//'.
	pendingAnyDepth := false
	for rest != "" {
		var step string
		nextAny := false
		if i := strings.Index(rest, "/"); i >= 0 {
			step, rest = rest[:i], rest[i+1:]
			if strings.HasPrefix(rest, "/") {
				rest = rest[1:]
				nextAny = true
			}
		} else {
			step, rest = rest, ""
		}
		step = strings.TrimSpace(step)
		if step == "" {
			return pathPattern{}, fmt.Errorf("xslt: empty step in pattern %q", src)
		}
		if err := checkStepTest(step, src); err != nil {
			return pathPattern{}, err
		}
		pp.steps = append(pp.steps, patternStep{test: step, anyDepth: pendingAnyDepth})
		pendingAnyDepth = nextAny
	}
	if pendingAnyDepth {
		return pathPattern{}, fmt.Errorf("xslt: pattern %q ends with '//'", src)
	}
	return pp, nil
}

func checkStepTest(step, pat string) error {
	switch step {
	case "*", "node()", "text()", "comment()", "processing-instruction()", "@*":
		return nil
	}
	name := strings.TrimPrefix(step, "@")
	if name == "" || strings.ContainsAny(name, "[](){}=<>\"' ") {
		return fmt.Errorf("xslt: unsupported pattern step %q in %q (predicates are not in the subset)", step, pat)
	}
	return nil
}

// defaultPriority follows XSLT 1.0's specificity defaults.
func (p *pattern) defaultPriority() float64 {
	// For alternations, XSLT treats each alternative separately; the subset
	// takes the max.
	best := -1.0
	for _, alt := range p.alts {
		pr := altPriority(alt)
		if pr > best {
			best = pr
		}
	}
	return best
}

func altPriority(pp pathPattern) float64 {
	if len(pp.steps) > 1 || pp.rooted {
		return 0.5
	}
	switch pp.steps[0].test {
	case "node()", "text()", "comment()", "processing-instruction()", "/":
		return -0.5
	case "*", "@*":
		return -0.25
	}
	return 0
}

// matches reports whether the pattern matches the node.
func (p *pattern) matches(n *xmltree.Node) bool {
	for _, alt := range p.alts {
		if altMatches(alt, n) {
			return true
		}
	}
	return false
}

func altMatches(pp pathPattern, n *xmltree.Node) bool {
	// Match steps right-to-left against n and its ancestors.
	cur := n
	for i := len(pp.steps) - 1; i >= 0; i-- {
		step := pp.steps[i]
		if i == len(pp.steps)-1 {
			if !stepMatches(step.test, cur) {
				return false
			}
			continue
		}
		// Preceding steps match ancestors. '/' join: the immediate parent;
		// '//' join (anyDepth on the step to the right): any ancestor.
		// The subset treats every join as parent; '//' joins are rare in
		// splitters and handled by scanning upward.
		parent := cur.Parent
		for parent != nil && !stepMatches(step.test, parent) {
			if !pp.steps[i+1].anyDepth {
				return false
			}
			parent = parent.Parent
		}
		if parent == nil {
			return false
		}
		cur = parent
	}
	if pp.rooted {
		top := cur
		if top.Kind != xmltree.DocumentNode {
			if top.Parent == nil || top.Parent.Kind != xmltree.DocumentNode {
				return false
			}
		}
	}
	return true
}

func stepMatches(test string, n *xmltree.Node) bool {
	switch test {
	case "/":
		return n.Kind == xmltree.DocumentNode
	case "node()":
		return n.Kind != xmltree.DocumentNode && n.Kind != xmltree.AttributeNode
	case "text()":
		return n.Kind == xmltree.TextNode
	case "comment()":
		return n.Kind == xmltree.CommentNode
	case "processing-instruction()":
		return n.Kind == xmltree.PINode
	case "*":
		return n.Kind == xmltree.ElementNode
	case "@*":
		return n.Kind == xmltree.AttributeNode
	}
	if name, isAttr := strings.CutPrefix(test, "@"); isAttr {
		return n.Kind == xmltree.AttributeNode && n.Name == name
	}
	return n.Kind == xmltree.ElementNode && n.Name == test
}
