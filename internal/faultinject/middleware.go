package faultinject

// middleware.go adapts the injector to HTTP: a server-side handler wrapper
// and a client-side RoundTripper, both driven by one seeded Injector so a
// chaos run's fault schedule is reproducible. Injected failures are shaped
// like real operational failures — a 503 with a structured JSON error body
// and a Retry-After header on the server side, a transport error on the
// client side — so the code under test exercises its production error
// paths, not a synthetic one.

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// HandlerOptions shape the responses the handler middleware fabricates for
// injected faults. The zero value is usable.
type HandlerOptions struct {
	// ErrorStatus is the status for injected failures; 0 means 503.
	ErrorStatus int
	// RetryAfter is the Retry-After advice attached to injected failures;
	// 0 means 1s.
	RetryAfter time.Duration
	// PartialBytes is how many body bytes a partial-response fault lets
	// through before silently dropping the rest; 0 means 16.
	PartialBytes int
}

func (o *HandlerOptions) status() int {
	if o == nil || o.ErrorStatus == 0 {
		return http.StatusServiceUnavailable
	}
	return o.ErrorStatus
}

func (o *HandlerOptions) retryAfter() time.Duration {
	if o == nil || o.RetryAfter == 0 {
		return time.Second
	}
	return o.RetryAfter
}

func (o *HandlerOptions) partialBytes() int {
	if o == nil || o.PartialBytes == 0 {
		return 16
	}
	return o.PartialBytes
}

// Handler wraps next with injected faults keyed by "METHOD path": latency
// stalls the request, a failure short-circuits it with opts.ErrorStatus, a
// structured JSON error body ({"error":{...},"retry_after_ms":...}) and a
// Retry-After header, and a partial verdict truncates next's response body
// after opts.PartialBytes. The injected 5xx body deliberately matches the
// "every error carries a structured body" server invariant so chaos tests
// can assert it uniformly over real and injected failures.
func Handler(next http.Handler, inj *Injector, opts *HandlerOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := inj.Decide(r.Method + " " + r.URL.Path)
		if d.Err != nil {
			retryable := IsTransient(d.Err)
			ra := opts.retryAfter()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int64((ra+time.Second-1)/time.Second)))
			w.Header().Set("X-Fault-Injected", "1")
			w.WriteHeader(opts.status())
			fmt.Fprintf(w, `{"error":{"code":"FAULT0001","message":%q,"retryable":%t},"retry_after_ms":%d}`,
				d.Err.Error(), retryable, ra.Milliseconds())
			return
		}
		if d.Partial {
			w.Header().Set("X-Fault-Injected", "partial")
			next.ServeHTTP(&truncatingWriter{ResponseWriter: w, remain: opts.partialBytes()}, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// truncatingWriter passes through the first remain body bytes and discards
// the rest, simulating a connection that died mid-response. Headers and
// status pass through untouched (the lie a half-written response tells).
type truncatingWriter struct {
	http.ResponseWriter
	remain int
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	if t.remain <= 0 {
		return len(p), nil // swallowed, but report success like a dead socket's buffer
	}
	n := len(p)
	if n > t.remain {
		n = t.remain
	}
	if _, err := t.ResponseWriter.Write(p[:n]); err != nil {
		return 0, err
	}
	t.remain -= n
	return len(p), nil
}

// RoundTripper wraps an http.RoundTripper with injected faults keyed by
// "METHOD url-path": latency stalls the call, a failure returns the
// *FaultError as a transport error (as if the dial or read failed), and a
// partial verdict truncates the response body after partialBytes bytes,
// surfacing io.ErrUnexpectedEOF to the reader.
func RoundTripper(inner http.RoundTripper, inj *Injector, partialBytes int) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if partialBytes <= 0 {
		partialBytes = 16
	}
	return &faultTransport{inner: inner, inj: inj, partialBytes: partialBytes}
}

type faultTransport struct {
	inner        http.RoundTripper
	inj          *Injector
	partialBytes int
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.inj.Decide(req.Method + " " + req.URL.Path)
	if d.Err != nil {
		return nil, d.Err
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || !d.Partial {
		return resp, err
	}
	resp.Body = &truncatedBody{inner: resp.Body, remain: t.partialBytes}
	resp.ContentLength = -1
	return resp, nil
}

// truncatedBody yields the first remain bytes of the real body and then
// fails with io.ErrUnexpectedEOF, the way a torn connection reads.
type truncatedBody struct {
	inner  io.ReadCloser
	remain int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.inner.Read(p)
	b.remain -= n
	if err == io.EOF {
		return n, io.EOF
	}
	if b.remain <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }
