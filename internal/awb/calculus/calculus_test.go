package calculus

import (
	"reflect"
	"strings"
	"testing"

	"lopsided/internal/awb"
)

// paperModel builds the graph behind the paper's canonical query: "Start at
// this user; follow the relation likes forwards; follow the relation uses
// but only to computer programs from there; collect the results, sorted by
// label."
func paperModel(t *testing.T) (*awb.Model, *awb.Node) {
	t.Helper()
	meta := awb.NewMetamodel("it")
	must := func(_ interface{}, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(meta.DefineNodeType("Entity", ""))
	must(meta.DefineNodeType("User", "Entity"))
	must(meta.DefineNodeType("Superuser", "User"))
	must(meta.DefineNodeType("Program", "Entity"))
	must(meta.DefineNodeType("System", "Entity"))
	must(meta.DefineRelationType("related-to", ""))
	must(meta.DefineRelationType("likes", "related-to"))
	must(meta.DefineRelationType("favors", "likes"))
	must(meta.DefineRelationType("uses", "related-to"))

	m := awb.NewModel(meta)
	mk := func(typ, label string) *awb.Node {
		n := m.NewNode(typ)
		n.SetProp("label", label)
		return n
	}
	alice := mk("User", "Alice")
	bob := mk("User", "Bob")
	carol := mk("Superuser", "Carol")
	zprog := mk("Program", "Zeta")
	aprog := mk("Program", "Alpha")
	sys := mk("System", "Payments")

	m.Connect("likes", alice, bob)
	m.Connect("favors", alice, carol) // favors is-a likes
	m.Connect("uses", bob, zprog)
	m.Connect("uses", bob, sys) // not a Program: filtered by target-type
	m.Connect("uses", carol, aprog)
	m.Connect("uses", carol, zprog) // duplicate target via another path
	return m, alice
}

const paperQueryXML = `
<query>
  <start id="%ID%"/>
  <follow relation="likes"/>
  <follow relation="uses" target-type="Program"/>
  <distinct/>
  <sort by="label"/>
</query>`

func TestPaperQueryNative(t *testing.T) {
	m, alice := paperModel(t)
	q, err := ParseXML(strings.ReplaceAll(paperQueryXML, "%ID%", alice.ID))
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.EvalNative(m)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, len(out))
	for i, n := range out {
		labels[i] = n.Label()
	}
	if strings.Join(labels, " ") != "Alpha Zeta" {
		t.Fatalf("labels = %v", labels)
	}
}

// TestNativeAndXQueryAgree is the central two-implementations check: both
// evaluators must return identical ID lists for a battery of queries.
func TestNativeAndXQueryAgree(t *testing.T) {
	m, alice := paperModel(t)
	queries := []string{
		strings.ReplaceAll(paperQueryXML, "%ID%", alice.ID),
		`<query><start type="User"/></query>`,
		`<query><start type="User"/><sort by="label"/></query>`,
		`<query><start type="Entity"/><filter-type type="Program"/><sort by="label"/></query>`,
		`<query><start type="User"/><follow relation="likes"/></query>`,
		`<query><start type="User"/><follow relation="uses"/><distinct/></query>`,
		`<query><start type="User"/><follow relation="uses" direction="backward"/></query>`,
		`<query><start type="Program"/><follow relation="uses" direction="backward"/><distinct/><sort by="label"/></query>`,
		`<query><start type="Entity"/><filter-property name="label" value="Bob"/></query>`,
		`<query><start type="Entity"/><filter-property name="label"/><limit n="3"/></query>`,
		`<query><start type="Entity"/><sort by="label"/><limit n="2"/></query>`,
		`<query><start id="N999"/></query>`, // nonexistent start
		`<query><start type="User"/><follow relation="nonexistent"/></query>`,
	}
	for _, src := range queries {
		t.Run(src, func(t *testing.T) {
			q, err := ParseXML(src)
			if err != nil {
				t.Fatal(err)
			}
			native, err := q.EvalNative(m)
			if err != nil {
				t.Fatal(err)
			}
			viaXQ, err := q.EvalXQuery(m)
			if err != nil {
				t.Fatalf("xquery eval: %v", err)
			}
			nativeIDs := IDs(native)
			if len(nativeIDs) == 0 && len(viaXQ) == 0 {
				return
			}
			if !reflect.DeepEqual(nativeIDs, viaXQ) {
				t.Fatalf("disagreement:\n native: %v\n xquery: %v\n source:\n%s",
					nativeIDs, viaXQ, q.CompileXQuery())
			}
		})
	}
}

func TestRelationSubtypingInFollow(t *testing.T) {
	m, alice := paperModel(t)
	// likes must include favors edges: Alice likes Bob and favors Carol.
	q, _ := ParseXML(`<query><start id="` + alice.ID + `"/><follow relation="likes"/><sort by="label"/></query>`)
	out, _ := q.EvalNative(m)
	labels := []string{}
	for _, n := range out {
		labels = append(labels, n.Label())
	}
	if strings.Join(labels, " ") != "Bob Carol" {
		t.Fatalf("labels = %v", labels)
	}
	ids, err := q.EvalXQuery(m)
	if err != nil || !reflect.DeepEqual(ids, IDs(out)) {
		t.Fatalf("xquery disagrees: %v vs %v (%v)", ids, IDs(out), err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<notquery/>`,
		`<query/>`, // no start
		`<query><start/></query>`,
		`<query><start type="a" id="b"/></query>`,
		`<query><start type="a"/><start type="b"/></query>`,
		`<query><start type="a"/><follow/></query>`,
		`<query><start type="a"/><follow relation="r" direction="sideways"/></query>`,
		`<query><start type="a"/><filter-type/></query>`,
		`<query><start type="a"/><filter-property/></query>`,
		`<query><start type="a"/><sort by="weight"/></query>`,
		`<query><start type="a"/><limit n="x"/></query>`,
		`<query><start type="a"/><mystery/></query>`,
	}
	for _, src := range cases {
		if _, err := ParseXML(src); err == nil {
			t.Errorf("ParseXML(%q) should fail", src)
		}
	}
}

func TestCompiledReuse(t *testing.T) {
	m, _ := paperModel(t)
	q, _ := ParseXML(`<query><start type="User"/><sort by="label"/></query>`)
	compiled, err := q.Compile()
	if err != nil {
		t.Fatal(err)
	}
	doc := m.ExportXML()
	first, err := compiled.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := compiled.Run(doc)
	if err != nil || !reflect.DeepEqual(first, second) {
		t.Fatalf("reuse: %v vs %v (%v)", first, second, err)
	}
}

func TestLimitAndDistinctSemantics(t *testing.T) {
	m, _ := paperModel(t)
	q, _ := ParseXML(`<query><start type="Entity"/><limit n="0"/></query>`)
	out, _ := q.EvalNative(m)
	if len(out) != 0 {
		t.Fatal("limit 0")
	}
	q, _ = ParseXML(`<query><start type="Entity"/><limit n="100"/></query>`)
	out, _ = q.EvalNative(m)
	if len(out) != 6 {
		t.Fatalf("limit beyond size: %d", len(out))
	}
}
