package awb

import (
	"strings"
	"testing"
)

// personMeta builds a small metamodel echoing the paper's examples:
// Person nodes with likes/favors relations, Systems with has.
func personMeta(t *testing.T) *Metamodel {
	t.Helper()
	m := NewMetamodel("test")
	mustNT := func(name, parent string, props ...PropertyDecl) {
		if _, err := m.DefineNodeType(name, parent, props...); err != nil {
			t.Fatal(err)
		}
	}
	mustRT := func(name, parent string, eps ...Endpoint) {
		if _, err := m.DefineRelationType(name, parent, eps...); err != nil {
			t.Fatal(err)
		}
	}
	mustNT("Entity", "")
	mustNT("Person", "Entity",
		PropertyDecl{Name: "firstName", Kind: PropString},
		PropertyDecl{Name: "lastName", Kind: PropString, Recommended: true},
		PropertyDecl{Name: "birthYear", Kind: PropInteger},
		PropertyDecl{Name: "biography", Kind: PropHTML},
	)
	mustNT("Superuser", "Person")
	mustNT("System", "Entity")
	mustNT("SystemBeingDesigned", "System")
	mustNT("Program", "Entity")
	mustRT("related-to", "")
	mustRT("likes", "related-to", Endpoint{Source: "Person", Target: "Person"})
	mustRT("favors", "likes")
	mustRT("has", "related-to", Endpoint{Source: "System", Target: "Entity"})
	mustRT("uses", "related-to",
		Endpoint{Source: "Person", Target: "System"},
		Endpoint{Source: "System", Target: "Program"})
	m.Singletons = []string{"SystemBeingDesigned"}
	return m
}

func TestMetamodelHierarchy(t *testing.T) {
	m := personMeta(t)
	if !m.IsNodeSubtype("Superuser", "Person") || !m.IsNodeSubtype("Superuser", "Entity") {
		t.Fatal("node subtyping")
	}
	if !m.IsNodeSubtype("Person", "Person") {
		t.Fatal("reflexive")
	}
	if m.IsNodeSubtype("Person", "Superuser") {
		t.Fatal("inverted subtyping")
	}
	if m.IsNodeSubtype("NoSuch", "Entity") {
		t.Fatal("unknown type has no supertypes")
	}
	if !m.IsNodeSubtype("NoSuch", "NoSuch") {
		t.Fatal("unknown type equals itself")
	}
	// favors is a subtype of likes — the paper's example.
	if !m.IsRelationSubtype("favors", "likes") {
		t.Fatal("relation subtyping")
	}
	subs := m.NodeSubtypes("Person")
	if strings.Join(subs, " ") != "Person Superuser" {
		t.Fatalf("NodeSubtypes = %v", subs)
	}
	rsubs := m.RelationSubtypes("likes")
	if strings.Join(rsubs, " ") != "favors likes" {
		t.Fatalf("RelationSubtypes = %v", rsubs)
	}
}

func TestMetamodelDuplicatesAndUnknownParents(t *testing.T) {
	m := NewMetamodel("x")
	if _, err := m.DefineNodeType("A", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DefineNodeType("A", ""); err == nil {
		t.Fatal("duplicate node type should fail")
	}
	if _, err := m.DefineNodeType("B", "NoSuch"); err == nil {
		t.Fatal("unknown parent should fail")
	}
	if _, err := m.DefineRelationType("r", "missing"); err == nil {
		t.Fatal("unknown relation parent should fail")
	}
}

func TestDeclaredPropertiesInherited(t *testing.T) {
	m := personMeta(t)
	props := m.DeclaredProperties("Superuser")
	names := make([]string, len(props))
	for i, p := range props {
		names[i] = p.Name
	}
	want := "firstName lastName birthYear biography"
	if strings.Join(names, " ") != want {
		t.Fatalf("inherited properties = %v", names)
	}
}

func TestModelBasics(t *testing.T) {
	m := NewModel(personMeta(t))
	alice := m.NewNode("Person")
	alice.SetProp("label", "Alice")
	bob := m.NewNode("Superuser")
	bob.SetProp("label", "Bob")
	m.Connect("likes", alice, bob)
	m.Connect("favors", bob, alice)

	if got := len(m.NodesOfType("Person")); got != 2 {
		t.Fatalf("NodesOfType(Person) = %d", got)
	}
	if got := len(m.NodesOfType("Superuser")); got != 1 {
		t.Fatalf("NodesOfType(Superuser) = %d", got)
	}
	// Outgoing over likes includes favors (subtype).
	if got := m.Outgoing(bob, "likes"); len(got) != 1 || got[0] != alice {
		t.Fatalf("Outgoing favors-as-likes = %v", got)
	}
	if got := m.Incoming(bob, "likes"); len(got) != 1 || got[0] != alice {
		t.Fatal("Incoming")
	}
	if alice.Label() != "Alice" {
		t.Fatal("label")
	}
	n := m.NewNode("Person")
	if n.Label() != n.ID {
		t.Fatal("label falls back to ID")
	}
	n.SetProp("name", "Named")
	if n.Label() != "Named" {
		t.Fatal("label falls back to name property")
	}
	if _, ok := m.Node(alice.ID); !ok {
		t.Fatal("Node lookup")
	}
	st := m.Stats()
	if st.Nodes != 3 || st.Relations != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUserOverridesAreLegal(t *testing.T) {
	// "A user can add a new property to a particular node" and "make a
	// Person use a Program" — both must be accepted, warnings only.
	m := NewModel(personMeta(t))
	p := m.NewNode("Person")
	p.SetProp("middleName", "Q") // undeclared property
	prog := m.NewNode("Program")
	m.Connect("uses", p, prog) // metamodel suggests Person uses System

	adv := m.Validate()
	var haveUndeclared, haveMismatch bool
	for _, a := range adv {
		switch a.Code {
		case CodeUndeclaredProp:
			haveUndeclared = true
			if a.Severity != Info {
				t.Fatal("user-added property should be Info")
			}
		case CodeEndpointMismatch:
			haveMismatch = true
			if a.Severity != Warning {
				t.Fatal("endpoint mismatch should be Warning")
			}
		}
	}
	if !haveUndeclared || !haveMismatch {
		t.Fatalf("advisories = %+v", adv)
	}
}

func TestSingletonAdvisories(t *testing.T) {
	m := NewModel(personMeta(t))
	adv := m.Validate()
	if !hasCode(adv, CodeSingletonMissing) {
		t.Fatal("missing SystemBeingDesigned should warn")
	}
	m.NewNode("SystemBeingDesigned")
	if adv := m.Validate(); hasCode(adv, CodeSingletonMissing) || hasCode(adv, CodeSingletonMultiple) {
		t.Fatal("exactly one should be quiet")
	}
	m.NewNode("SystemBeingDesigned")
	if adv := m.Validate(); !hasCode(adv, CodeSingletonMultiple) {
		t.Fatal("two should warn")
	}
}

func TestValidatePropertyKindsAndMissing(t *testing.T) {
	m := NewModel(personMeta(t))
	p := m.NewNode("Person")
	p.SetProp("birthYear", "not-a-year")
	adv := m.Validate()
	if !hasCode(adv, CodeBadPropertyValue) {
		t.Fatal("bad integer should warn")
	}
	if !hasCode(adv, CodeMissingProperty) {
		t.Fatal("missing recommended lastName should warn")
	}
	p.SetProp("birthYear", "1970")
	p.SetProp("lastName", "Smith")
	adv = m.Validate()
	if hasCode(adv, CodeBadPropertyValue) || hasCode(adv, CodeMissingProperty) {
		t.Fatalf("fixed node still warns: %+v", adv)
	}
	// Unknown node and relation types are Info.
	x := m.NewNode("Invented")
	m.Connect("invented-rel", x, p)
	adv = m.Validate()
	if !hasCode(adv, CodeUnknownType) || !hasCode(adv, CodeUnknownRelation) {
		t.Fatal("unknown types should be advised")
	}
}

func hasCode(adv []Advisory, code string) bool {
	for _, a := range adv {
		if a.Code == code {
			return true
		}
	}
	return false
}

func TestSortAndDedup(t *testing.T) {
	m := NewModel(personMeta(t))
	a := m.NewNode("Person")
	a.SetProp("label", "zeta")
	b := m.NewNode("Person")
	b.SetProp("label", "alpha")
	c := m.NewNode("Person")
	c.SetProp("label", "alpha")
	sorted := SortNodesByLabel([]*Node{a, b, c})
	if sorted[0] != b || sorted[1] != c || sorted[2] != a {
		t.Fatal("sort by label then ID")
	}
	d := DedupNodes([]*Node{a, b, a, c, b})
	if len(d) != 3 || d[0] != a || d[1] != b || d[2] != c {
		t.Fatalf("dedup = %v", d)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	m := NewModel(personMeta(t))
	alice := m.NewNode("Person")
	alice.SetProp("label", "Alice")
	alice.SetProp("biography", "<p>Hello &amp; welcome</p>")
	sys := m.NewNode("SystemBeingDesigned")
	sys.SetProp("label", "Payments")
	m.Connect("uses", alice, sys)

	out := m.ExportXMLString()
	back, err := ImportXML(out)
	if err != nil {
		t.Fatalf("import: %v\n%s", err, out)
	}
	if !Equal(m, back) {
		t.Fatalf("round trip mismatch:\n%s\n----\n%s", out, back.ExportXMLString())
	}
	// Metamodel survived: subtype queries work on the imported model.
	if !back.Meta.IsRelationSubtype("favors", "likes") {
		t.Fatal("imported metamodel lost hierarchy")
	}
	// New nodes after import do not collide with imported IDs.
	n := back.NewNode("Person")
	if _, clash := m.Node(n.ID); n.ID == alice.ID || n.ID == sys.ID {
		t.Fatalf("ID collision after import: %v %v", n.ID, clash)
	}
}

func TestImportErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"wrong root", `<not-a-model/>`},
		{"node no id", `<awb-model><node type="X"/></awb-model>`},
		{"dup node id", `<awb-model><node id="N1" type="X"/><node id="N1" type="X"/></awb-model>`},
		{"rel missing source", `<awb-model><relation id="R1" target="N1"/></awb-model>`},
		{"rel unknown node", `<awb-model><relation id="R1" source="N9" target="N8"/></awb-model>`},
		{"bad element", `<awb-model><mystery/></awb-model>`},
		{"prop no name", `<awb-model><node id="N1" type="X"><property>v</property></node></awb-model>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ImportXML(c.src); err == nil {
				t.Fatalf("ImportXML(%q) should fail", c.src)
			}
		})
	}
}

func TestEndpointAdvisedInheritance(t *testing.T) {
	m := personMeta(t)
	// favors inherits likes' endpoints.
	if !m.EndpointAdvised("favors", "Person", "Person") {
		t.Fatal("inherited endpoints")
	}
	// Subtype sources satisfy endpoints: Superuser is a Person.
	if !m.EndpointAdvised("likes", "Superuser", "Person") {
		t.Fatal("subtype sources")
	}
	if m.EndpointAdvised("likes", "System", "Person") {
		t.Fatal("unrelated source should not be advised")
	}
	if m.EndpointAdvised("nonexistent", "Person", "Person") {
		t.Fatal("unknown relation")
	}
}
