package experiments

import (
	"strings"
	"testing"

	"lopsided/xq"
)

// The streaming benchmarks pin the F6 corpus shape as allocation-gated
// regression tests (BENCH_stream.json, cmd/benchcheck): the SAX evaluator
// and the projection-pruned parse against the materializing parse, all over
// the same markup. The streaming variants' allocs/op is the gate — a
// scanner that starts copying token buffers, or a projection that stops
// pruning, shows up there deterministically.

func benchStreamDoc(b *testing.B) string {
	b.Helper()
	return f6Doc(2000)
}

func BenchmarkStreamEvalCount(b *testing.B) {
	src := benchStreamDoc(b)
	q, err := xq.CompileStream(`count(//item[@k = 'k7'])`)
	if err != nil {
		b.Fatal(err)
	}
	if q.Mode() != xq.StreamFull {
		b.Fatalf("mode = %v, want full-stream", q.Mode())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := q.EvalReader(nil, strings.NewReader(src))
		if err != nil || out != "125" {
			b.Fatalf("out=%q err=%v", out, err)
		}
	}
}

func BenchmarkProjectedParse(b *testing.B) {
	src := benchStreamDoc(b)
	q, err := xq.CompileStream(`sum(//item/@n)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.ParseProjected(strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializedParse(b *testing.B) {
	src := benchStreamDoc(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xq.ParseXMLReader(strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}
