package lopsided_test

// Benchmarks for the update sublanguage (PR 8): the preserved copy-phase
// xqgen pipeline (the paper's C2 shape, five full-document copies) against
// the single-pass update program that replaced it — BenchmarkXqgenPhasePipeline
// in bench_docgen_test.go now measures the single-pass generator, and
// BenchmarkXqgenCopyPhases here keeps the legacy path honest — plus a
// Transform micro-benchmark isolating the pending-update-list apply on both
// the copy-on-write spine and the eager deep-copy reference path.
// Before/after numbers live in BENCH_update.json.

import (
	"fmt"
	"strings"
	"testing"

	"lopsided/internal/docgen/xqgen"
	"lopsided/internal/workload"
	"lopsided/xq"
)

// BenchmarkXqgenCopyPhases measures the legacy five-phase pipeline on the
// same model/template pair as BenchmarkXqgenPhasePipeline, so the two names
// read as a before/after pair in one bench run.
func BenchmarkXqgenCopyPhases(b *testing.B) {
	model := workload.BuildITModel(workload.Config{Seed: 2, Users: 25, Systems: 6, Servers: 8, Programs: 12, Docs: 9})
	tpl := workload.ParseTemplate(workload.SystemContextTemplate)
	g := xqgen.NewCopyPhases()
	if _, err := g.Generate(model, tpl); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Generate(model, tpl); err != nil {
			b.Fatal(err)
		}
	}
}

// benchUpdateDoc builds a flat corpus-like document with n records and
// freezes it, the read-mostly shape the COW apply path is built for.
func benchUpdateDoc(b *testing.B, n int) *xq.Node {
	var sb strings.Builder
	sb.WriteString("<corpus>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<rec id="r%d" k="k%d"><title>Record %d</title><body>text %d</body></rec>`, i, i%7, i, i)
	}
	sb.WriteString("</corpus>")
	doc, err := xq.ParseXML(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return xq.Freeze(doc)
}

// benchUpdateSrc touches one record family out of seven: an attribute
// insert and a child rename on the k3 records, and a delete of the k5
// records. A sparse pending-update list like this is the COW path's case:
// six-sevenths of the tree rides along untouched and shared.
const benchUpdateSrc = `
delete /corpus/rec[@k = "k5"];
for $r in /corpus/rec where $r/@k = "k3" return (
  insert attribute audited { "1" } into $r;
  rename ($r/body)[1] as "content"
)`

func benchTransform(b *testing.B, eager bool) {
	q, err := xq.CompileUpdate(benchUpdateSrc, xq.WithEagerCopyApply(eager))
	if err != nil {
		b.Fatal(err)
	}
	doc := benchUpdateDoc(b, 500)
	if _, err := q.Transform(nil, doc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Transform(nil, doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateTransformCOW is the production apply path: the result
// shares every untouched subtree with the frozen input.
func BenchmarkUpdateTransformCOW(b *testing.B) { benchTransform(b, false) }

// BenchmarkUpdateTransformEager is the reference apply path: a full deep
// copy of the input before the pending-update list lands. The gap between
// the two is what the COW spine saves.
func BenchmarkUpdateTransformEager(b *testing.B) { benchTransform(b, true) }
