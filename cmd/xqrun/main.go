// Command xqrun evaluates an XQuery program from a file or -e expression.
//
//	xqrun -e 'for $i in 1 to 3 return $i * $i'
//	xqrun -ctx data.xml query.xq
//	xqrun -O 2 -galax-trace -e 'let $d := trace("gone", 1) return 2'
//	xqrun -timeout 2s -max-steps 1000000 -e 'some untrusted query'
//
// Errors print as "xqrun: [CODE] line:col: message"; the exit code
// distinguishes usage (2), static (3), dynamic (4) and resource-limit (5)
// failures — see package cliutil.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lopsided/internal/cliutil"
	"lopsided/xq"
)

type varFlags map[string]string

func (v varFlags) String() string { return fmt.Sprint(map[string]string(v)) }

func (v varFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("-var wants name=value, got %q", s)
	}
	v[name] = val
	return nil
}

func main() {
	expr := flag.String("e", "", "inline XQuery expression (instead of a file)")
	ctxFile := flag.String("ctx", "", "XML file to use as the context item")
	optLevel := flag.Int("O", 2, "optimizer level (0-2)")
	galaxTrace := flag.Bool("galax-trace", false, "treat fn:trace as pure, reproducing the dead-code bug")
	timeout := flag.Duration("timeout", 0, "wall-clock evaluation budget (0 = none)")
	maxSteps := flag.Int64("max-steps", 0, "evaluation step budget (0 = unlimited)")
	maxNodes := flag.Int64("max-nodes", 0, "constructed-node budget (0 = unlimited)")
	maxOutput := flag.Int64("max-output-bytes", 0, "constructed-output byte budget (0 = unlimited)")
	vars := varFlags{}
	flag.Var(vars, "var", "bind an external variable: -var name=value (repeatable)")
	flag.Parse()

	src := *expr
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: xqrun [-e expr | file.xq] [-ctx doc.xml] [-O n] [-var name=value]")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	opts := []xq.Option{
		xq.WithLimits(xq.Limits{
			Timeout:        *timeout,
			MaxSteps:       *maxSteps,
			MaxNodes:       *maxNodes,
			MaxOutputBytes: *maxOutput,
		}),
		xq.WithOptLevel(xq.OptLevel(*optLevel)),
		xq.WithTraceEffectful(!*galaxTrace),
		xq.WithTracer(func(values []string) {
			fmt.Fprintln(os.Stderr, "trace:", strings.Join(values, " "))
		}),
		xq.WithDocResolver(func(uri string) (*xq.Node, error) {
			data, err := os.ReadFile(uri)
			if err != nil {
				return nil, err
			}
			return xq.ParseXML(string(data))
		}),
	}
	q, err := xq.CompileCached(src, opts...)
	if err != nil {
		fatal(err)
	}
	var ctx *xq.Node
	if *ctxFile != "" {
		data, err := os.ReadFile(*ctxFile)
		if err != nil {
			fatal(err)
		}
		if ctx, err = xq.ParseXML(string(data)); err != nil {
			fatal(err)
		}
	}
	external := map[string]xq.Sequence{}
	for name, val := range vars {
		external[name] = xq.Singleton(xq.String(val))
	}
	out, err := q.EvalStringWith(ctx, external)
	if err != nil {
		fatal(err)
	}
	fmt.Println(out)
}

// fatal prints the structured error surface (code, position, message) and
// exits with the cliutil taxonomy: 3 static, 4 dynamic, 5 limit, 1 other.
func fatal(err error) {
	os.Exit(cliutil.Report(os.Stderr, "xqrun", err))
}
