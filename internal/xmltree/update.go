package xmltree

// update.go applies a pending-update list (PUL) to a tree in one pass over
// one logical copy. The caller (the XQuery update runtime) evaluates every
// target and content expression against the unchanged source snapshot,
// collects the resulting updates, and hands the whole list to ApplyUpdates,
// which:
//
//   - takes one lazy Clone of the root (freezing the source subtree — the
//     pre-update snapshot stays valid, and any index memoized on it stays
//     correct by construction);
//   - maps each target node to its child-index path in the source and
//     navigates the clone along exactly those paths, so only the spine from
//     the root to each touched node is materialized — everything off the
//     spines stays shared with the source;
//   - rebuilds each touched parent's child list once, applying inserts,
//     replaces and deletes together (index shifts from earlier updates can
//     never corrupt later ones, because positions are the source's);
//   - freezes the new root before returning it, so it is immediately
//     IndexCacheable and safe to share.
//
// This is the FLUX-style answer to the paper's C2 complaint: where the
// five-phase pipeline paid a full document copy per phase, a compiled
// update program pays one logical copy for any number of updates.

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// UpdateOp is the kind of one pending update.
type UpdateOp int

// Update operations, in the order the sublanguage spells them.
const (
	// UpdInsertInto appends content (and folds attribute content) into the
	// target element.
	UpdInsertInto UpdateOp = iota
	// UpdInsertBefore inserts content as preceding siblings of the target.
	UpdInsertBefore
	// UpdInsertAfter inserts content as following siblings of the target.
	UpdInsertAfter
	// UpdDelete detaches the target from its parent.
	UpdDelete
	// UpdReplace replaces the target with content (attribute targets are
	// replaced by the update's attribute content).
	UpdReplace
	// UpdRename gives the target (element, attribute or PI) a new name.
	UpdRename
)

func (op UpdateOp) String() string {
	switch op {
	case UpdInsertInto:
		return "insert-into"
	case UpdInsertBefore:
		return "insert-before"
	case UpdInsertAfter:
		return "insert-after"
	case UpdDelete:
		return "delete"
	case UpdReplace:
		return "replace"
	case UpdRename:
		return "rename"
	}
	return fmt.Sprintf("UpdateOp(%d)", int(op))
}

// Update is one entry of a pending-update list. Target is a node of the
// source tree (the tree ApplyUpdates receives as root); Content and Attrs
// are fresh, parentless nodes the update layer has already copied out of
// whatever produced them.
type Update struct {
	Op     UpdateOp
	Target *Node
	// Content holds non-attribute content nodes (inserts and replaces).
	Content []*Node
	// Attrs holds attribute content: folded into the target for
	// UpdInsertInto, the replacement attributes when UpdReplace targets an
	// attribute node.
	Attrs []*Node
	// Name is the new name for UpdRename.
	Name string
}

// ApplyStats reports what one ApplyUpdates call did.
type ApplyStats struct {
	// Applied is the number of updates applied (the PUL length).
	Applied int64
	// SpineNodes is the number of lazy clone nodes materialized while
	// navigating to the targets — the copied spine. Everything else in the
	// new tree still shares the source's storage.
	SpineNodes int64
}

// Process-wide update counters, surfaced through obs's probe alongside the
// COW sharing counters.
var (
	updApplied atomic.Int64
	updSpine   atomic.Int64
)

// UpdateCounters returns the process-wide totals of updates applied and
// spine nodes materialized by ApplyUpdates.
func UpdateCounters() (applied, spine int64) {
	return updApplied.Load(), updSpine.Load()
}

// Structural sentinel errors ApplyUpdates reports; the update runtime maps
// them onto XQuery Update Facility error codes.
var (
	// ErrTargetNotInTree : an update's target does not belong to the tree
	// being transformed.
	ErrTargetNotInTree = errors.New("update target is not in the tree being transformed")
	// ErrTargetIsRoot : delete/replace/insert-before/insert-after need a
	// parent to operate in, and the root has none.
	ErrTargetIsRoot = errors.New("update target is the root (no parent to restructure)")
	// ErrReplaceConflict : two replaces name the same target.
	ErrReplaceConflict = errors.New("two replaces target the same node")
	// ErrRenameConflict : two renames name the same target.
	ErrRenameConflict = errors.New("two renames target the same node")
)

// nodeOps accumulates every update aimed at one clone node.
type nodeOps struct {
	insBefore []*Node
	insAfter  []*Node
	replaced  bool
	replaceBy []*Node
	replAttrs []*Node
	deleted   bool
	renamed   bool
	renameTo  string
}

// applyState is the working state of one ApplyUpdates pass.
type applyState struct {
	ops     map[*Node]*nodeOps // keyed by clone node
	parents map[*Node]bool     // clone parents whose child lists need a rebuild
	// attrParents maps clone elements to attribute-level ops on them.
	attrParents map[*Node]bool
	attrOps     map[*Node]*nodeOps // keyed by clone attribute node
	// insInto is applied after the structural rebuild, in PUL order.
	insInto []intoOp
	stats   ApplyStats
}

type intoOp struct {
	target  *Node
	attrs   []*Node
	content []*Node
}

// ApplyUpdates applies the pending-update list to the tree rooted at root
// and returns the transformed tree as a new frozen root. root itself is
// frozen (it becomes the source of a lazy clone) and is never mutated; both
// snapshots remain valid afterwards.
//
// When eager is true the logical copy is a full CloneEager deep copy and no
// sharing happens — the naive reference implementation the differential
// harness compares the COW path against.
func ApplyUpdates(root *Node, ups []Update, eager bool) (*Node, ApplyStats, error) {
	if root.Kind != ElementNode && root.Kind != DocumentNode {
		return nil, ApplyStats{}, fmt.Errorf("xmltree: cannot transform a %v root", root.Kind)
	}
	var newRoot *Node
	if eager {
		newRoot = root.CloneEager()
	} else {
		newRoot = root.Clone()
	}
	st := &applyState{
		ops:         map[*Node]*nodeOps{},
		parents:     map[*Node]bool{},
		attrParents: map[*Node]bool{},
		attrOps:     map[*Node]*nodeOps{},
	}
	// Phase A: resolve every target into the clone and record its ops.
	// All navigation happens before any structural change, so the source's
	// child indexes stay valid throughout.
	for i := range ups {
		if err := st.collect(root, newRoot, &ups[i]); err != nil {
			return nil, ApplyStats{}, err
		}
	}
	// Phase B: rebuild each touched parent's child list once.
	for parent := range st.parents {
		st.rebuildChildren(parent)
	}
	for parent := range st.attrParents {
		st.rebuildAttrs(parent)
	}
	// Phase C: renames and into-inserts (pure node-local mutations).
	for n, o := range st.ops {
		if o.renamed {
			n.Name = o.renameTo
		}
	}
	for a, o := range st.attrOps {
		if o.renamed {
			a.Name = o.renameTo
		}
	}
	for _, io := range st.insInto {
		for _, a := range io.attrs {
			io.target.AttachAttr(a)
		}
		for _, c := range io.content {
			io.target.AppendChild(c)
		}
	}
	st.stats.Applied = int64(len(ups))
	updApplied.Add(st.stats.Applied)
	updSpine.Add(st.stats.SpineNodes)
	return Freeze(newRoot), st.stats, nil
}

// collect resolves one update's target into the clone and records the
// operation. The returned errors are the structural sentinels above.
func (st *applyState) collect(root, newRoot *Node, u *Update) error {
	target, err := st.resolve(root, newRoot, u.Target)
	if err != nil {
		return err
	}
	structural := u.Op == UpdDelete || u.Op == UpdReplace ||
		u.Op == UpdInsertBefore || u.Op == UpdInsertAfter
	if structural && target == newRoot {
		return ErrTargetIsRoot
	}
	if u.Target.Kind == AttributeNode {
		return st.collectAttr(target, u)
	}
	switch u.Op {
	case UpdInsertInto:
		st.insInto = append(st.insInto, intoOp{target: target, attrs: u.Attrs, content: u.Content})
		return nil
	case UpdRename:
		o := st.opsFor(target)
		if o.renamed {
			return ErrRenameConflict
		}
		o.renamed, o.renameTo = true, u.Name
		return nil
	}
	o := st.opsFor(target)
	st.parents[target.Parent] = true
	switch u.Op {
	case UpdInsertBefore:
		o.insBefore = append(o.insBefore, u.Content...)
	case UpdInsertAfter:
		o.insAfter = append(o.insAfter, u.Content...)
	case UpdDelete:
		o.deleted = true
	case UpdReplace:
		if o.replaced {
			return ErrReplaceConflict
		}
		o.replaced, o.replaceBy = true, u.Content
	}
	return nil
}

// collectAttr records an operation whose target is an attribute node.
// Inserts relative to attributes are rejected by the update runtime before
// the PUL reaches us, so only delete/replace/rename arrive here.
func (st *applyState) collectAttr(target *Node, u *Update) error {
	o := st.attrOps[target]
	if o == nil {
		o = &nodeOps{}
		st.attrOps[target] = o
	}
	switch u.Op {
	case UpdDelete:
		o.deleted = true
		st.attrParents[target.Parent] = true
	case UpdReplace:
		if o.replaced {
			return ErrReplaceConflict
		}
		o.replaced, o.replAttrs = true, u.Attrs
		st.attrParents[target.Parent] = true
	case UpdRename:
		if o.renamed {
			return ErrRenameConflict
		}
		o.renamed, o.renameTo = true, u.Name
	default:
		return fmt.Errorf("xmltree: %v cannot target an attribute", u.Op)
	}
	return nil
}

func (st *applyState) opsFor(n *Node) *nodeOps {
	o := st.ops[n]
	if o == nil {
		o = &nodeOps{}
		st.ops[n] = o
	}
	return o
}

// resolve maps a source-tree target to the corresponding node of the clone
// by replaying its child-index path, materializing (and counting) exactly
// the spine nodes the path crosses.
func (st *applyState) resolve(root, newRoot, target *Node) (*Node, error) {
	if target.Root() != root {
		return nil, ErrTargetNotInTree
	}
	path := target.path(nil)
	cur := newRoot
	for _, idx := range path {
		if cur.src.Load() != nil {
			st.stats.SpineNodes++
		}
		if idx < 0 {
			attrs := cur.Attrs()
			i := len(attrs) + idx
			if i < 0 || i >= len(attrs) {
				return nil, ErrTargetNotInTree
			}
			cur = attrs[i]
			continue
		}
		kids := cur.Children()
		if idx >= len(kids) {
			return nil, ErrTargetNotInTree
		}
		cur = kids[idx]
	}
	return cur, nil
}

// rebuildChildren rewrites one parent's child list, applying every
// structural op aimed at its children in a single pass. Before-inserts
// precede the node (or its replacement), after-inserts follow it; a deleted
// node simply does not reappear.
func (st *applyState) rebuildChildren(parent *Node) {
	old := parent.Children()
	out := make([]*Node, 0, len(old))
	for _, k := range old {
		o := st.ops[k]
		if o == nil {
			out = append(out, k)
			continue
		}
		out = append(out, o.insBefore...)
		switch {
		case o.replaced:
			out = append(out, o.replaceBy...)
		case !o.deleted:
			out = append(out, k)
		}
		out = append(out, o.insAfter...)
	}
	parent.SetChildren(out)
}

// rebuildAttrs rewrites one element's attribute list for attribute-level
// deletes and replaces.
func (st *applyState) rebuildAttrs(parent *Node) {
	old := parent.Attrs()
	out := make([]*Node, 0, len(old))
	for _, a := range old {
		o := st.attrOps[a]
		if o == nil {
			out = append(out, a)
			continue
		}
		switch {
		case o.replaced:
			for _, r := range o.replAttrs {
				r.Parent = parent
				out = append(out, r)
			}
			a.Parent = nil
		case o.deleted:
			a.Parent = nil
		default:
			out = append(out, a)
		}
	}
	parent.materialize()
	parent.attrs = out
}
