package experiments

// stream.go is the F6 streaming experiment: the same attribute-probe query
// evaluated over growing documents in the three streaming tiers —
// materialized parse (the pre-streaming engine), projection-pruned parse,
// and the pure SAX evaluator — measuring live heap held during evaluation
// (the working set a larger-than-memory document would actually cost) and
// end-to-end throughput at each document size. The paper's engines always
// materialized; projection (Marian–Siméon) and streaming evaluation are the
// standard fixes its deployments never got.

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"lopsided/internal/textkit"
	"lopsided/xq"
)

func init() {
	register("F6", "Streaming tiers vs materialized parse over growing documents", runF6)
}

// f6Doc renders a catalog of n items (each with an attribute pair, a title
// child, and filler siblings the query never touches) as markup, NOT a
// tree — the input streams from this string in every tier.
func f6Doc(n int) string {
	var b strings.Builder
	b.WriteString(`<catalog>`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<section n="%d">`, i)
		fmt.Fprintf(&b, `<item n="%d" k="k%d"><title>Item number %d</title></item>`, i, i%16, i)
		fmt.Fprintf(&b, `<blurb>Filler prose the query never inspects, item %d edition.</blurb>`, i)
		b.WriteString(`</section>`)
	}
	b.WriteString(`</catalog>`)
	return b.String()
}

// F6Row is one (document size, tier) measurement.
type F6Row struct {
	Items int    `json:"items"`
	Bytes int64  `json:"doc_bytes"`
	Mode  string `json:"mode"`
	// EvalNs is the median end-to-end time: parse (whatever the tier
	// materializes) plus evaluation.
	EvalNs int64 `json:"eval_ns"`
	// MBPerSec is input bytes over EvalNs.
	MBPerSec float64 `json:"mb_per_sec"`
	// HeapBytes is the live heap held at the end of the run with the tier's
	// working set still referenced (the materialized tree, the projected
	// tree, or nothing), after a GC: the resident cost of the document.
	HeapBytes int64 `json:"heap_bytes"`
	// AllocBytes is the total allocation during the run.
	AllocBytes int64 `json:"alloc_bytes"`
}

// measureRun times fn and measures its memory: fn returns whatever the tier
// keeps alive (the parsed tree, or nil), which stays referenced across the
// closing GC so HeapBytes reports the tier's resident working set.
func measureRun(fn func() (any, error)) (heap, alloc int64, d time.Duration, err error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	held, err := fn()
	d = time.Since(start)
	if err != nil {
		return 0, 0, 0, err
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	heap = int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	if heap < 1 {
		heap = 1 // the SAX tier can retain nothing; keep ratios finite
	}
	alloc = int64(m1.TotalAlloc - m0.TotalAlloc)
	runtime.KeepAlive(held)
	return heap, alloc, d, nil
}

// F6Run measures the query across the three tiers at each item count, with
// `runs` repetitions per cell (medians reported). Exposed so the CI smoke
// job can regenerate BENCH_stream.json's series.
func F6Run(sizes []int, runs int) ([]F6Row, error) {
	const query = `count(//item[@k = 'k7'])`
	tiers := []struct {
		mode string
		opts []xq.Option
	}{
		{"materialize", []xq.Option{xq.WithStreamEval(false), xq.WithProjection(false)}},
		{"projected", []xq.Option{xq.WithStreamEval(false)}},
		{"full-stream", nil},
	}
	var out []F6Row
	for _, n := range sizes {
		src := f6Doc(n)
		want := ""
		for _, tier := range tiers {
			q, err := xq.CompileStream(query, tier.opts...)
			if err != nil {
				return nil, fmt.Errorf("compile (%s): %w", tier.mode, err)
			}
			if got := q.Mode().String(); got != tier.mode {
				return nil, fmt.Errorf("tier %s resolved to mode %s", tier.mode, got)
			}
			var best F6Row
			for r := 0; r < runs; r++ {
				var result string
				heap, alloc, d, err := measureRun(func() (any, error) {
					var held any
					var e error
					if tier.mode == "full-stream" {
						result, e = q.EvalReader(nil, strings.NewReader(src))
					} else {
						// Parse in the tier's own way, hold the tree so the
						// closing GC sees the resident cost, then evaluate.
						var doc *xq.Node
						doc, e = parseTier(q, src, tier.mode)
						if e == nil {
							held = doc
							result, e = q.EvalString(nil, doc)
						}
					}
					return held, e
				})
				if err != nil {
					return nil, fmt.Errorf("run %s n=%d: %w", tier.mode, n, err)
				}
				if want == "" {
					want = result
				} else if result != want {
					return nil, fmt.Errorf("PARITY FAILURE n=%d %s: %q vs %q", n, tier.mode, result, want)
				}
				if best.EvalNs == 0 || d.Nanoseconds() < best.EvalNs {
					best = F6Row{EvalNs: d.Nanoseconds(), HeapBytes: heap, AllocBytes: alloc}
				}
			}
			best.Items, best.Bytes, best.Mode = n, int64(len(src)), tier.mode
			best.MBPerSec = float64(len(src)) / 1e6 / (float64(best.EvalNs) / 1e9)
			out = append(out, best)
		}
	}
	return out, nil
}

// parseTier parses src the way the tier's EvalReader would, returning the
// tree it materializes (so the measurement can hold it live).
func parseTier(q *xq.StreamQuery, src, mode string) (*xq.Node, error) {
	if mode == "projected" {
		return q.ParseProjected(strings.NewReader(src))
	}
	return xq.ParseXMLReader(strings.NewReader(src))
}

func runF6() (Report, error) {
	rows, err := F6Run([]int{500, 2000, 8000, 32000}, 5)
	if err != nil {
		return Report{}, err
	}
	var tbl [][]string
	var matHeap, projHeap, streamHeap int64
	var largest int64
	for _, r := range rows {
		tbl = append(tbl, []string{
			fmt.Sprintf("%d", r.Items),
			fmt.Sprintf("%.1f MB", float64(r.Bytes)/1e6),
			r.Mode,
			fmtDur(time.Duration(r.EvalNs)),
			fmt.Sprintf("%.1f MB/s", r.MBPerSec),
			fmtBytes(r.HeapBytes),
		})
		if r.Bytes >= largest {
			largest = r.Bytes
			switch r.Mode {
			case "materialize":
				matHeap = r.HeapBytes
			case "projected":
				projHeap = r.HeapBytes
			case "full-stream":
				streamHeap = r.HeapBytes
			}
		}
	}
	matVsStream := float64(matHeap) / float64(streamHeap)
	matVsProj := float64(matHeap) / float64(projHeap)
	verdict := fmt.Sprintf(
		"at the largest document the SAX tier holds %.0fx less live heap than the materialized parse (projection alone %.1fx, target >=5x), with identical results at every size; memory stays O(depth) while the materialized tree grows with the input",
		matVsStream, matVsProj)
	if matVsStream < 5 {
		verdict = fmt.Sprintf("TARGET MISSED — materialized/full-stream heap ratio %.1fx, want >=5x", matVsStream)
	}
	return Report{
		ID:      "F6",
		Title:   "Streaming tiers vs materialized parse",
		Paper:   "(derived) the paper's engines parsed every document fully before evaluating; static path projection and SAX-style streaming are the standard fixes for the larger-than-memory documents its deployments hit",
		Text:    textkit.Table([]string{"items", "doc size", "tier", "time", "throughput", "live heap"}, tbl),
		Verdict: verdict,
	}, nil
}

// fmtBytes renders a byte count in the closest sensible unit.
func fmtBytes(b int64) string {
	switch {
	case b >= 10*1024*1024:
		return fmt.Sprintf("%.0f MB", float64(b)/(1024*1024))
	case b >= 10*1024:
		return fmt.Sprintf("%.0f KB", float64(b)/1024)
	default:
		return fmt.Sprintf("%d B", b)
	}
}
