package optimizer

// Access-path planning: a rewrite pass over path expressions that decides,
// per step, how the runtime should produce the step's node set — an index
// scan, a synopsis prune, or the default tree walk — and records the
// decision (with its rationale) on the step for EXPLAIN.
//
// The pass also performs the one structural rewrite that unlocks the big
// win: a `descendant-or-self::node()` step (the expansion of `//`) followed
// by a `child::name` step collapses into a single `descendant::name` step,
// which the element-name index answers in O(result) instead of O(tree).
// The fusion is semantics-preserving only under tight conditions:
//
//   - the descendant-or-self step must carry no predicates, and
//   - the child step's predicates must be empty, consist of exactly one
//     foldable `[@attr = 'literal']` predicate, or (shapes on) consist of
//     exactly one predicate the shape analysis proves non-positional.
//
// Positional predicates block fusion because `a//b[2]` counts positions per
// parent while `descendant::b[2]` counts globally — a divergence the
// differential oracle would (and did, at design time) catch. The shape
// widening admits exactly the predicates where that hazard is absent: the
// predicate's value can never be a singleton number (so predicateHolds
// takes the effective-boolean branch on both plans) and the predicate never
// reads the focus position via fn:position or fn:last. The context ITEM is
// the candidate node itself under either grouping, so everything else the
// predicate can observe is identical.
//
// Decisions here are advisory toward an equivalent plan: the interpreter
// falls back to the tree walk whenever the context tree has no usable index,
// so planning never changes semantics, only cost.

import (
	"strings"

	"lopsided/internal/xdm"
	"lopsided/internal/xquery/ast"
	"lopsided/internal/xquery/shapes"
)

// planPath assigns access paths to the steps of p, fusing //-pairs first.
// Called for every rewritten PathExpr at O1+ unless access paths are
// disabled.
func (o *optimizer) planPath(p *ast.PathExpr) {
	// Leading-`//` fusion: RootSlashSlash expands to "all nodes of the
	// document, then step 1". When step 1 is a fusable child::name, the pair
	// is exactly descendant::name from the document root.
	if p.Root == ast.RootSlashSlash && len(p.Steps) > 0 {
		if fused, ok := o.fuseChild(p.Steps[0]); ok {
			p.Root = ast.RootSlash
			p.Steps[0] = fused
		}
	}
	// Interior `//` fusion: descendant-or-self::node() + fusable child::name.
	steps := p.Steps[:0]
	for i := 0; i < len(p.Steps); i++ {
		s := p.Steps[i]
		if isDescOrSelfNode(s) && i+1 < len(p.Steps) {
			if fused, ok := o.fuseChild(p.Steps[i+1]); ok {
				steps = append(steps, fused)
				i++
				continue
			}
		}
		steps = append(steps, s)
	}
	p.Steps = steps
	for i := range p.Steps {
		if p.Steps[i].Access == nil {
			o.planStep(&p.Steps[i])
		}
	}
}

// fuseChild turns a fusable child::name step into the descendant::name step
// that replaces a (descendant-or-self::node(), child::name) pair, folding a
// single [@attr = 'v'] predicate into the probe when present.
func (o *optimizer) fuseChild(s ast.Step) (ast.Step, bool) {
	name, ok := plainName(s)
	if !ok {
		return s, false
	}
	ap := &ast.AccessPath{Kind: ast.AccessIndexScan, Fused: true}
	switch {
	case len(s.Preds) == 0:
		ap.Reason = "fused // into descendant::" + name
	case len(s.Preds) == 1:
		attr, val, foldable := foldableAttrPred(s.Preds[0])
		if foldable {
			ap.AttrName, ap.AttrValue = attr, val
			ap.Reason = "fused // into descendant::" + name + ", folded [@" + attr + " = '" + val + "']"
			s.Preds = nil
			o.stats.FoldedPredicates++
			break
		}
		if !o.shapeNonPositional(s.Preds[0]) {
			return s, false
		}
		// The predicate stays on the step (applied after the index probe or
		// the walk fallback); only the grouping changed, which the shape
		// proof shows the predicate cannot observe.
		ap.Reason = "fused // into descendant::" + name + ", predicate shape-proven non-positional"
		o.stats.ShapeWidenedPredicates++
	default:
		return s, false
	}
	s.Axis = ast.AxisDescendant
	s.Access = ap
	o.stats.IndexScans++
	return s, true
}

// shapeNonPositional reports whether the shape analysis proves a predicate
// can never act positionally AND can never raise: its value holds no
// numeric atomic (so a singleton-number positional test is impossible), it
// never calls fn:position or fn:last, and evaluation is total. The totality
// leg matters because fusion reorders predicate evaluation (per-parent
// groups become one global document-order scan); a predicate that raises
// different codes on different nodes would surface a different first error
// across plans. A total predicate can at worst make the effective-boolean
// test raise FORG0006 — the same code under either order. A path made only
// of predicate-free axis steps gets the same guarantee structurally: from
// the node focus a fused step supplies, axis steps produce only nodes and
// raise nothing, and an all-node value is EBV-safe. Disabled configurations
// refuse every predicate, reproducing the pre-shapes plans.
func (o *optimizer) shapeNonPositional(pred ast.Expr) bool {
	if o.opts.DisableShapes {
		return false
	}
	sh := shapes.InferExpr(pred, shapes.Scope{
		InScope:    func(name string) bool { return o.scope[name] > 0 },
		IsUserFunc: func(name string) bool { return o.userFuncs[name] },
		HasFocus:   true,
	})
	if sh.Atomic&shapes.ANum != 0 {
		return false
	}
	if !sh.Total && !pureAxisPath(pred) {
		return false
	}
	return !usesFocusPosition(pred)
}

// pureAxisPath recognizes a path consisting solely of predicate-free,
// primary-free axis steps — total whenever the context item is a node,
// which fuseChild's candidate steps guarantee.
func pureAxisPath(e ast.Expr) bool {
	p, ok := e.(*ast.PathExpr)
	if !ok {
		return false
	}
	for _, s := range p.Steps {
		if s.Primary != nil || len(s.Preds) != 0 {
			return false
		}
	}
	return true
}

// usesFocusPosition reports whether e contains a call to fn:position or
// fn:last anywhere — including inside nested predicates, where the call is
// harmless (it sees its own focus); the coarse answer only costs a fusion.
func usesFocusPosition(e ast.Expr) bool {
	found := false
	walk(e, func(x ast.Expr) bool {
		if call, ok := x.(*ast.FunctionCall); ok {
			switch call.Name {
			case "position", "fn:position", "last", "fn:last":
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// planStep records the access-path decision for one unfused step.
func (o *optimizer) planStep(s *ast.Step) {
	if s.Primary != nil {
		return // filter step: no axis to access
	}
	name, ok := plainName(*s)
	if !ok {
		s.Access = &ast.AccessPath{Kind: ast.AccessTreeWalk, Reason: "wildcard or kind test"}
		o.stats.TreeWalks++
		return
	}
	switch s.Axis {
	case ast.AxisDescendant:
		ap := &ast.AccessPath{Kind: ast.AccessIndexScan, Reason: "descendant::" + name + " name step"}
		if len(s.Preds) > 0 {
			if attr, val, foldable := foldableAttrPred(s.Preds[0]); foldable {
				ap.AttrName, ap.AttrValue = attr, val
				ap.Reason = "descendant name step, folded [@" + attr + " = '" + val + "']"
				s.Preds = s.Preds[1:]
				o.stats.FoldedPredicates++
			}
		}
		s.Access = ap
		o.stats.IndexScans++
	case ast.AxisChild:
		if len(s.Preds) > 0 {
			if attr, val, foldable := foldableAttrPred(s.Preds[0]); foldable {
				s.Access = &ast.AccessPath{
					Kind: ast.AccessIndexScan, AttrName: attr, AttrValue: val,
					Reason: "child name step, folded [@" + attr + " = '" + val + "']",
				}
				s.Preds = s.Preds[1:]
				o.stats.FoldedPredicates++
				o.stats.IndexScans++
				return
			}
		}
		s.Access = &ast.AccessPath{Kind: ast.AccessSynopsisPrune, Reason: "child::" + name + " name step"}
		o.stats.SynopsisPrunes++
	default:
		s.Access = &ast.AccessPath{Kind: ast.AccessTreeWalk, Reason: s.Axis.String() + " axis not indexed"}
		o.stats.TreeWalks++
	}
}

// plainName extracts the step's exact element-name test: an axis step whose
// test is a literal name with no wildcard component. Prefixed names qualify
// (the index stores full lexical names).
func plainName(s ast.Step) (string, bool) {
	if s.Primary != nil || s.Test.Kind != nil {
		return "", false
	}
	name := s.Test.Name
	if name == "" || strings.ContainsRune(name, '*') {
		return "", false
	}
	return name, true
}

// isDescOrSelfNode recognizes the bare descendant-or-self::node() step the
// parser emits for `//`. Any predicate disqualifies it from fusion.
func isDescOrSelfNode(s ast.Step) bool {
	return s.Primary == nil && len(s.Preds) == 0 &&
		s.Axis == ast.AxisDescendantOrSelf &&
		s.Test.Kind != nil && s.Test.Kind.Kind == xdm.TestAnyNode
}

// foldableAttrPred recognizes the predicate shape [@attr = 'literal'] (either
// operand order): a general = comparison between a bare single-step
// attribute path with a plain name and a string literal. Only the general
// comparison folds — it is existential and cannot raise on duplicate
// attributes, unlike the value comparison `eq` (XPTY0004 on a two-item
// sequence), and string-literal comparison of untyped attribute values is
// exact string equality, matching the index key.
func foldableAttrPred(e ast.Expr) (attr, val string, ok bool) {
	b, isBin := e.(*ast.Binary)
	if !isBin || b.Kind != ast.OpGeneralComp || b.Cmp != xdm.OpEq {
		return "", "", false
	}
	if a, v, ok := attrLitPair(b.L, b.R); ok {
		return a, v, true
	}
	return attrLitPair(b.R, b.L)
}

// attrLitPair matches (attribute path, string literal) in that order.
func attrLitPair(l, r ast.Expr) (attr, val string, ok bool) {
	lit, isLit := r.(*ast.StringLit)
	if !isLit {
		return "", "", false
	}
	p, isPath := l.(*ast.PathExpr)
	if !isPath || p.Root != ast.RootNone || len(p.Steps) != 1 {
		return "", "", false
	}
	s := p.Steps[0]
	if s.Axis != ast.AxisAttribute || len(s.Preds) != 0 {
		return "", "", false
	}
	name, plain := plainName(s)
	if !plain {
		return "", "", false
	}
	return name, lit.Value, true
}
