package project

import (
	"strings"
	"testing"

	"lopsided/internal/xquery/optimizer"
	"lopsided/internal/xquery/parser"
)

// analyzeQuery parses (without optimizing) and analyzes a query.
func analyzeQuery(t *testing.T, src string) Result {
	t.Helper()
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Analyze(m)
}

// analyzeOptimized runs the O2 pipeline first, the shape CompileStream uses.
func analyzeOptimized(t *testing.T, src string) Result {
	t.Helper()
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	optimizer.Optimize(m, optimizer.Options{Level: 2})
	return Analyze(m)
}

func projString(t *testing.T, r Result) string {
	t.Helper()
	if r.Proj == nil {
		t.Fatalf("analysis bailed: %s", r.Reason)
	}
	return r.Proj.String()
}

func TestAnalyzeShellCount(t *testing.T) {
	r := analyzeQuery(t, `count(/site/people/person)`)
	got := projString(t, r)
	for _, want := range []string{"/site", "/site/people", "/site/people/person"} {
		if !strings.Contains(got, want) {
			t.Fatalf("projection %q missing %q", got, want)
		}
	}
	if strings.Contains(got, "#subtree") {
		t.Fatalf("count query should not need subtrees: %q", got)
	}
}

func TestAnalyzeDescendantAggregate(t *testing.T) {
	r := analyzeQuery(t, `count(//item)`)
	got := projString(t, r)
	if !strings.Contains(got, "//item") || strings.Contains(got, "#subtree") {
		t.Fatalf("projection = %q", got)
	}
}

func TestAnalyzeSerializeSubtree(t *testing.T) {
	// The body result is serialized: terminal path needs the subtree.
	r := analyzeQuery(t, `/site/regions/europe`)
	got := projString(t, r)
	if !strings.Contains(got, "/site/regions/europe#subtree") {
		t.Fatalf("projection = %q", got)
	}
	if strings.Contains(got, "/site#subtree") || strings.Contains(got, "/site/regions#subtree") {
		t.Fatalf("ancestors over-retained: %q", got)
	}
}

func TestAnalyzeAttributeOnly(t *testing.T) {
	r := analyzeQuery(t, `count(//item[@featured = "yes"])`)
	got := projString(t, r)
	if !strings.Contains(got, "@featured") {
		t.Fatalf("projection %q missing attribute mark", got)
	}
	if strings.Contains(got, "#subtree") {
		t.Fatalf("attribute comparison should not retain subtrees: %q", got)
	}
}

func TestAnalyzeComparisonSubtree(t *testing.T) {
	// The predicate atomizes price children.
	r := analyzeQuery(t, `count(/site/item[price > 10])`)
	got := projString(t, r)
	if !strings.Contains(got, "/site/item/price#subtree") {
		t.Fatalf("projection = %q", got)
	}
}

func TestAnalyzeFLWORVars(t *testing.T) {
	r := analyzeQuery(t, `for $i in /site/item where $i/sold = "y" return string($i/name)`)
	got := projString(t, r)
	if !strings.Contains(got, "/site/item/sold#subtree") || !strings.Contains(got, "/site/item/name#subtree") {
		t.Fatalf("projection = %q", got)
	}
	// $i itself is never value-used whole.
	if strings.Contains(got, "/site/item#subtree") {
		t.Fatalf("FLWOR over-retained the binding: %q", got)
	}
}

func TestAnalyzeBailReverseAxis(t *testing.T) {
	for _, src := range []string{
		`//item/..`,
		`//item/parent::site`,
		`//item/ancestor::*`,
		`//item/following-sibling::item`,
		`//item/preceding::*`,
		`count(//item[ancestor::closed])`,
	} {
		r := analyzeQuery(t, src)
		if r.Proj != nil {
			t.Fatalf("%q should bail, got %q", src, r.Proj.String())
		}
	}
}

func TestAnalyzeBailRoot(t *testing.T) {
	r := analyzeQuery(t, `declare function local:up($x) { root($x) }; local:up(//item)`)
	if r.Proj != nil {
		t.Fatalf("root() should bail, got %q", r.Proj.String())
	}
}

func TestAnalyzeUserFunctionArgsSubtree(t *testing.T) {
	r := analyzeQuery(t, `declare function local:f($x) { $x/price * 2 }; local:f(//item[1])`)
	got := projString(t, r)
	if !strings.Contains(got, "//item#subtree") {
		t.Fatalf("user-function arg must be whole subtree: %q", got)
	}
}

func TestAnalyzeKindTestSubtree(t *testing.T) {
	r := analyzeQuery(t, `count(//item/text())`)
	got := projString(t, r)
	if !strings.Contains(got, "//item#subtree") {
		t.Fatalf("kind test needs subtree: %q", got)
	}
}

func TestAnalyzeContextSerialize(t *testing.T) {
	// "." serialized → whole document.
	r := analyzeQuery(t, `.`)
	if r.Proj == nil {
		t.Fatalf("bailed: %s", r.Reason)
	}
	if !r.Proj.EverythingNeeded() {
		t.Fatalf("serializing the context item must retain everything: %q", r.Proj.String())
	}
}

func TestAnalyzePureComputation(t *testing.T) {
	r := analyzeQuery(t, `sum(1 to 100)`)
	if r.Proj == nil {
		t.Fatalf("bailed: %s", r.Reason)
	}
	if len(r.Proj.Paths) != 0 {
		t.Fatalf("doc-free query should project nothing, got %q", r.Proj.String())
	}
}

func TestAnalyzeDescUnderDesc(t *testing.T) {
	r := analyzeQuery(t, `count(//open_auction//bidder)`)
	got := projString(t, r)
	if !strings.Contains(got, "//open_auction//bidder") {
		t.Fatalf("projection = %q", got)
	}
}

func TestAnalyzeOptimizedForms(t *testing.T) {
	// The optimizer may fuse descendant steps; analysis must survive both
	// raw and optimized ASTs with compatible projections.
	for _, src := range []string{
		`count(//item)`,
		`count(/site//item[@id = "7"])`,
		`string(//person[1]/name)`,
		`for $p in //person return count($p/watches)`,
	} {
		raw := analyzeQuery(t, src)
		opt := analyzeOptimized(t, src)
		if (raw.Proj == nil) != (opt.Proj == nil) {
			t.Fatalf("%q: raw bail=%v opt bail=%v", src, raw.Proj == nil, opt.Proj == nil)
		}
	}
}

func TestAnalyzeOrderBySubtree(t *testing.T) {
	r := analyzeQuery(t, `for $i in /s/i order by $i/k return count($i/v)`)
	got := projString(t, r)
	if !strings.Contains(got, "/s/i/k#subtree") {
		t.Fatalf("order-by key needs subtree: %q", got)
	}
}

func TestAnalyzeUnionPaths(t *testing.T) {
	r := analyzeQuery(t, `count(/a/b | /a/c)`)
	got := projString(t, r)
	if !strings.Contains(got, "/a/b") || !strings.Contains(got, "/a/c") {
		t.Fatalf("projection = %q", got)
	}
}

func TestFoldedAttrPredicateMarked(t *testing.T) {
	// At O1+ the optimizer folds [@featured = "yes"] into the step's access
	// path and removes it from Preds; the projection must still retain the
	// attribute or the projected evaluation sees every predicate as false.
	res := analyzeOptimized(t, `count(//person[@featured = "yes"])`)
	if res.Proj == nil {
		t.Fatal(res.Reason)
	}
	s := res.Proj.String()
	if !strings.Contains(s, "@featured") {
		t.Fatalf("folded attribute predicate not retained: %s", s)
	}
}
