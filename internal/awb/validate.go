package awb

import (
	"fmt"
	"strconv"
)

// Severity grades an advisory. AWB never rejects a model: "it will display
// a meek warning message in a corner of the screen".
type Severity int

// Advisory severities.
const (
	Info Severity = iota
	Warning
)

// String names the severity.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "info"
}

// Advisory is one validation finding. Advisories are recommendations, never
// errors — downstream consumers (like the document generator) must cope
// with models that violate the metamodel.
type Advisory struct {
	Severity Severity
	Code     string // stable machine-readable code
	NodeID   string // "" for model-level advisories
	Message  string
}

// Advisory codes.
const (
	CodeSingletonMissing  = "singleton-missing"
	CodeSingletonMultiple = "singleton-multiple"
	CodeUnknownType       = "unknown-type"
	CodeUnknownRelation   = "unknown-relation"
	CodeEndpointMismatch  = "endpoint-mismatch"
	CodeMissingProperty   = "missing-property"
	CodeUndeclaredProp    = "undeclared-property"
	CodeBadPropertyValue  = "bad-property-value"
)

// Validate checks the model against its metamodel and returns advisories.
// This is the machinery behind the Omissions window: incomplete or
// unexpected parts of the model, surfaced but never enforced.
func (m *Model) Validate() []Advisory {
	var out []Advisory
	// Singleton expectations (the SystemBeingDesigned rule).
	for _, typ := range m.Meta.Singletons {
		n := len(m.NodesOfType(typ))
		switch {
		case n == 0:
			out = append(out, Advisory{Severity: Warning, Code: CodeSingletonMissing,
				Message: fmt.Sprintf("you might want to ensure that there is exactly one %s node; there are none", typ)})
		case n > 1:
			out = append(out, Advisory{Severity: Warning, Code: CodeSingletonMultiple,
				Message: fmt.Sprintf("you might want to ensure that there is exactly one %s node; there are %d", typ, n)})
		}
	}
	for _, node := range m.Nodes() {
		out = append(out, m.validateNode(node)...)
	}
	for _, rel := range m.Relations() {
		out = append(out, m.validateRelation(rel)...)
	}
	return out
}

func (m *Model) validateNode(node *Node) []Advisory {
	var out []Advisory
	if _, known := m.Meta.NodeType(node.Type); !known {
		out = append(out, Advisory{Severity: Info, Code: CodeUnknownType, NodeID: node.ID,
			Message: fmt.Sprintf("node %s has type %q, which the metamodel does not describe", node.ID, node.Type)})
		return out
	}
	decls := m.Meta.DeclaredProperties(node.Type)
	declared := map[string]PropertyDecl{}
	for _, d := range decls {
		declared[d.Name] = d
	}
	for _, d := range decls {
		if !d.Recommended {
			continue
		}
		if _, set := node.Prop(d.Name); !set {
			out = append(out, Advisory{Severity: Warning, Code: CodeMissingProperty, NodeID: node.ID,
				Message: fmt.Sprintf("%s %q has no %s", node.Type, node.Label(), d.Name)})
		}
	}
	for _, name := range node.PropNames() {
		d, known := declared[name]
		if !known {
			out = append(out, Advisory{Severity: Info, Code: CodeUndeclaredProp, NodeID: node.ID,
				Message: fmt.Sprintf("node %s has user-added property %q", node.ID, name)})
			continue
		}
		v, _ := node.Prop(name)
		if !propValueOK(d.Kind, v) {
			out = append(out, Advisory{Severity: Warning, Code: CodeBadPropertyValue, NodeID: node.ID,
				Message: fmt.Sprintf("property %q of node %s is not a valid %s: %q", name, node.ID, d.Kind, v)})
		}
	}
	return out
}

func (m *Model) validateRelation(rel *Relation) []Advisory {
	var out []Advisory
	if _, known := m.Meta.RelationType(rel.Type); !known {
		out = append(out, Advisory{Severity: Info, Code: CodeUnknownRelation,
			Message: fmt.Sprintf("relation %s has type %q, which the metamodel does not describe", rel.ID, rel.Type)})
		return out
	}
	if !m.Meta.EndpointAdvised(rel.Type, rel.Source.Type, rel.Target.Type) {
		// "Presumably the user thinks that this makes sense" — warn only.
		out = append(out, Advisory{Severity: Warning, Code: CodeEndpointMismatch,
			Message: fmt.Sprintf("relation %s connects %s to %s, which the metamodel does not suggest for %q",
				rel.ID, rel.Source.Type, rel.Target.Type, rel.Type)})
	}
	return out
}

func propValueOK(kind PropKind, v string) bool {
	switch kind {
	case PropInteger:
		_, err := strconv.ParseInt(v, 10, 64)
		return err == nil
	case PropBoolean:
		return v == "true" || v == "false"
	}
	return true // strings and HTML accept anything
}
