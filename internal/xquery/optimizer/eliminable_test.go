package optimizer

// Audit of the two dead-let eliminability judges. The syntactic whitelist
// predates the shape analysis; now that both answer, they must agree on the
// whitelist's domain (everything the whitelist accepts, shapes must prove
// total) and the composition must stay strict on the two corners the
// whitelist was built around: fn:trace effectfulness and user functions
// shadowing built-in names.

import (
	"testing"

	"lopsided/internal/xquery/ast"
	"lopsided/internal/xquery/parser"
	"lopsided/internal/xquery/shapes"
)

// newTestOptimizer builds an optimizer with the given bound variables and
// declared user-function names, mirroring the state rewriteFLWOR would have
// mid-walk.
func newTestOptimizer(opts Options, vars, funcs []string) *optimizer {
	o := &optimizer{opts: opts, userFuncs: map[string]bool{}, scope: map[string]int{}}
	for _, v := range vars {
		o.bind(v)
	}
	for _, f := range funcs {
		o.userFuncs[f] = true
	}
	return o
}

func parseExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

// TestEliminableAgreementAudit pins the agreement: every expression the
// syntactic whitelist accepts, the shape analysis must independently prove
// total under the same scope. A failure here means one judge over-promises
// and the stricter one must win — which is exactly what a whitelist
// acceptance that shapes refuses would violate, since eliminable ORs them.
func TestEliminableAgreementAudit(t *testing.T) {
	corpus := []string{
		`1`, `"a"`, `1.5`, `1e0`, `()`,
		`$x`, `$nope`,
		`(1, "a", $x)`, `(1, $nope)`,
		`-5`, `-1.5`, `-$x`,
		`true()`, `false()`, `not(true())`,
		`trace("a", 1)`, `trace($x, "lbl")`, `trace()`,
		`1 + 2`, `1 div 0`, `//a`, `position()`,
		`concat("a", "b")`, `count($x)`, `string-length("abc")`,
		`"a" cast as xs:string`, `"a" cast as xs:integer`,
	}
	o := newTestOptimizer(Options{Level: O2}, []string{"x"}, nil)
	sc := shapes.Scope{
		InScope:    func(name string) bool { return o.scope[name] > 0 },
		IsUserFunc: func(name string) bool { return o.userFuncs[name] },
	}
	for _, src := range corpus {
		e := parseExpr(t, src)
		if o.eliminableSyntactic(e) && !shapes.TotalExpr(e, sc) {
			t.Errorf("%s: syntactic whitelist accepts but shapes cannot prove totality", src)
		}
	}
}

// TestEliminableShapesUpgrade checks the expressions the whitelist refuses
// but the shape analysis proves total — and that genuinely risky ones stay
// refused by both.
func TestEliminableShapesUpgrade(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`1 + 2`, true},
		{`"a" cast as xs:string`, true},
		{`count($x)`, true},
		{`string-length("abc")`, true},
		{`1 eq 2`, true},
		{`1 div 0`, false},                // FOAR0001
		{`1 idiv 2`, false},               // FOAR0001/0002 even on safe operands
		{`//a`, false},                    // needs a focus: XPDY0002
		{`position()`, false},             // focus-dependent
		{`"a" cast as xs:integer`, false}, // FORG0001
		{`no-such-fn(1)`, false},          // XPST0017
		{`concat("a", $x)`, false},        // unbounded arg: AtMostOne can raise
	}
	o := newTestOptimizer(Options{Level: O2}, []string{"x"}, nil)
	for _, c := range cases {
		e := parseExpr(t, c.src)
		if got := o.eliminable(e); got != c.want {
			t.Errorf("eliminable(%s) = %v, want %v", c.src, got, c.want)
		}
		if c.want && o.eliminableSyntactic(e) {
			t.Errorf("%s: expected a shapes-only upgrade, but the whitelist already accepts it", c.src)
		}
	}
	if o.stats.ShapeProvenTotal == 0 {
		t.Error("no shapes-proven eliminations counted")
	}
	// The same expressions with shapes disabled: only the whitelist answers.
	off := newTestOptimizer(Options{Level: O2, DisableShapes: true}, []string{"x"}, nil)
	for _, c := range cases {
		if off.eliminable(parseExpr(t, c.src)) {
			t.Errorf("%s: eliminable with shapes disabled", c.src)
		}
	}
}

// TestEliminableTraceCorners: shapes considers fn:trace total (true — it
// formats and forwards), but dropping one is only legal when the
// configuration says trace has no side channel. The shapes path must not
// reopen the paper's dead-trace bug in the fixed configuration.
func TestEliminableTraceCorners(t *testing.T) {
	// trace over a non-whitelist but shapes-total argument.
	e := parseExpr(t, `trace(1 + 2, "lbl")`)

	galax := newTestOptimizer(Options{Level: O2}, nil, nil)
	if galax.eliminableSyntactic(e) {
		t.Error("trace(1 + 2, ...) must not pass the syntactic whitelist (1 + 2 is not a literal)")
	}
	if !galax.eliminable(e) {
		t.Error("galax-era config: shapes-total trace binding should be eliminable")
	}

	fixed := newTestOptimizer(Options{Level: O2, TraceIsEffectful: true}, nil, nil)
	if fixed.eliminable(e) {
		t.Error("TraceIsEffectful: trace must never be eliminable, even when shapes proves it total")
	}
	// ... including a trace buried inside a larger total expression.
	buried := parseExpr(t, `concat("a", trace("b", "lbl"))`)
	if fixed.eliminable(buried) {
		t.Error("TraceIsEffectful: buried trace must block elimination")
	}

	// End to end: the galax-era shapes elimination still records the elided
	// trace sites for the structured tracer.
	mod, err := parser.Parse(`let $dummy := trace(1 + 2, "lbl") return 9`)
	if err != nil {
		t.Fatal(err)
	}
	stats := Optimize(mod, Options{Level: O2})
	if stats.EliminatedLets != 1 || stats.ElidedTraces != 1 {
		t.Fatalf("galax-era stats = %+v", stats)
	}
	if len(mod.ElidedTraces) != 1 {
		t.Fatalf("elided trace sites not recorded: %v", mod.ElidedTraces)
	}
}

// TestEliminableShadowedBuiltin: a user function shadowing a built-in name
// must not borrow the built-in's totality in either judge.
func TestEliminableShadowedBuiltin(t *testing.T) {
	for _, src := range []string{`true()`, `false()`, `count("a")`} {
		e := parseExpr(t, src)
		name := e.(*ast.FunctionCall).Name
		clean := newTestOptimizer(Options{Level: O2}, nil, nil)
		if !clean.eliminable(e) {
			t.Errorf("%s: built-in call should be eliminable", src)
		}
		shadowed := newTestOptimizer(Options{Level: O2}, nil, []string{name})
		if shadowed.eliminable(e) {
			t.Errorf("%s: call resolving to a user function must not be eliminable", src)
		}
	}
}

// TestOptimizeShapesDeadLet: the full pipeline drops a dead let the
// whitelist alone would keep, and leaves it with shapes disabled.
func TestOptimizeShapesDeadLet(t *testing.T) {
	const src = `let $u := "a" cast as xs:string return 9`
	mod, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stats := Optimize(mod, Options{Level: O2})
	if _, isFLWOR := mod.Body.(*ast.FLWOR); isFLWOR {
		t.Fatal("dead let not eliminated despite shapes totality proof")
	}
	if stats.EliminatedLets != 1 || stats.ShapeProvenTotal != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	mod2, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stats2 := Optimize(mod2, Options{Level: O2, DisableShapes: true})
	if _, isFLWOR := mod2.Body.(*ast.FLWOR); !isFLWOR {
		t.Fatal("noshapes config must keep the cast binding")
	}
	if stats2.ShapeProvenTotal != 0 {
		t.Fatalf("noshapes stats = %+v", stats2)
	}
}
